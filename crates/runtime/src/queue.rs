//! The deterministic event queue: a min-heap ordered by `(time, seq)`.
//!
//! `seq` is a monotonically increasing insertion counter, so entries
//! scheduled for the same instant pop in insertion order. This is the
//! *only* event-ordering implementation in the workspace; the simulator's
//! global event loop and the TCP runner's timer wheel are both built on
//! it, which is what makes their schedules comparable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use banyan_types::time::Time;

/// One scheduled entry. Ordering ignores the payload entirely: `(at, seq)`
/// is a total order because `seq` is unique per queue.
struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered queue of `T`.
///
/// Pops strictly by `(time, insertion sequence)`; two queues fed the same
/// pushes in the same order always pop identically, independent of the
/// payload type's own ordering (it needs none).
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at `at`. Entries with equal `at` pop in the order
    /// they were pushed.
    pub fn push(&mut self, at: Time, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, item }));
    }

    /// Time of the earliest entry, if any.
    pub fn next_at(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.item))
    }

    /// Removes and returns the earliest entry if it is due at `now`
    /// (i.e. scheduled at or before it).
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, T)> {
        if self.next_at()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total entries ever pushed (the next seq number). Diagnostic.
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.next_at(), Some(Time(10)));
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Time(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((Time(7), i)), "insertion order broken at {i}");
        }
    }

    #[test]
    fn interleaved_equal_and_distinct_times() {
        let mut q = EventQueue::new();
        q.push(Time(5), "first@5");
        q.push(Time(3), "only@3");
        q.push(Time(5), "second@5");
        q.push(Time(4), "only@4");
        q.push(Time(5), "third@5");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, s)| s)).collect();
        assert_eq!(
            order,
            vec!["only@3", "only@4", "first@5", "second@5", "third@5"]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(20), 2);
        assert_eq!(q.pop_due(Time(5)), None);
        assert_eq!(q.pop_due(Time(10)), Some((Time(10), 1)));
        assert_eq!(q.pop_due(Time(15)), None);
        assert_eq!(q.pop_due(Time(25)), Some((Time(20), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn payload_needs_no_ordering() {
        // A payload type with no Ord/Eq at all.
        struct Opaque(#[allow(dead_code)] fn() -> u32);
        let mut q = EventQueue::new();
        q.push(Time(2), Opaque(|| 2));
        q.push(Time(1), Opaque(|| 1));
        assert_eq!(q.pop().map(|(t, _)| t), Some(Time(1)));
    }
}
