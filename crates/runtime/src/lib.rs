//! The shared engine-driver layer.
//!
//! Every deployment of a Banyan [`Engine`](banyan_types::engine::Engine) —
//! the discrete-event simulator (`banyan-simnet`), the threaded TCP runner
//! (`banyan-transport`) and the experiment harness (`banyan-bench`) — must
//! order events and timers *identically*, or the repo's core claim
//! ("simulation results transfer to real sockets because both drive the
//! same engine") falls apart. This crate is that single implementation:
//!
//! * [`queue::EventQueue`] — the deterministic min-heap every driver
//!   schedules on: entries pop by time, ties broken by insertion sequence.
//! * [`driver::TimerSet`] — engine timers over an [`queue::EventQueue`],
//!   with stale-timer filtering (timers for abandoned rounds are dropped
//!   before delivery, see [`driver::is_stale`]).
//! * [`driver::CommitSink`] — where finalized blocks land; implemented by
//!   the simulator's metrics pipeline, the TCP run report and plain `Vec`s.
//! * [`driver::route_actions`] — the one routing of an engine's
//!   [`Actions`](banyan_types::engine::Actions) into commits, timers and
//!   outbound transmissions.
//! * [`driver::EngineDriver`] — a complete single-engine event loop core
//!   (init / message / due-timer dispatch), used by the TCP runner.
//!
//! Nothing here performs I/O, reads a clock or draws randomness; drivers
//! inject time and transport. That keeps every run reproducible from its
//! inputs.

pub mod driver;
pub mod queue;

pub use driver::{
    is_stale, route_actions, ActionDispatch, CommitSink, EngineDriver, FnDispatch, TimerSet,
};
pub use queue::EventQueue;
