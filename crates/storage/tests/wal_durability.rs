//! WAL durability properties (ISSUE 7 satellite):
//!
//! 1. **Torn-write tolerance** — whatever prefix of the log survives a
//!    crash (truncation at any byte, or a corrupted tail byte), reopening
//!    recovers a *consistent prefix* of the mutation history: exactly the
//!    state produced by applying the first `k` mutations to a fresh
//!    in-memory store, for some `k ≤ n`.
//! 2. **Restart determinism** — a replica that crashes and replays its
//!    WAL reaches bit-identical store state (normalized snapshot bytes)
//!    to one that never crashed.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use banyan_crypto::Signature;
use banyan_storage::{BlockStore, ChainStore, WalStore};
use banyan_types::codec::Wire;
use banyan_types::ids::{BlockHash, Rank, ReplicaId, Round};
use banyan_types::payload::Payload;
use banyan_types::time::Time;
use banyan_types::Block;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/wal-tests/durability")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn make_block(round: u64, parent: BlockHash, tag: u8) -> (BlockHash, Block) {
    let b = Block {
        round: Round(round),
        proposer: ReplicaId(tag as u16),
        rank: Rank(0),
        parent,
        proposed_at: Time(round),
        payload: Payload::synthetic(64, tag as u64),
        signature: Signature::zero(),
    };
    (b.hash(1024), b)
}

/// One abstract mutation, derived from a byte script so proptest can
/// shrink sequences.
#[derive(Clone, Debug)]
enum Mutation {
    Insert { round: u64, tag: u8 },
    Notarize { index: usize },
    Finalize { index: usize },
}

/// Turns a byte script into a concrete mutation sequence over a growing
/// chain (parents always reference an existing block).
fn script_to_mutations(script: &[u8]) -> Vec<Mutation> {
    let mut out = Vec::new();
    let mut inserted = 0usize;
    for (i, &b) in script.iter().enumerate() {
        match b % 4 {
            0 | 1 => {
                out.push(Mutation::Insert {
                    round: (inserted as u64) + 1,
                    tag: (i % 251) as u8,
                });
                inserted += 1;
            }
            2 if inserted > 0 => out.push(Mutation::Notarize {
                index: b as usize % inserted,
            }),
            3 if inserted > 0 => out.push(Mutation::Finalize {
                index: b as usize % inserted,
            }),
            _ => {}
        }
    }
    out
}

/// Resolves the concrete chain the mutation script describes: block
/// `index` in insertion order, so index-based mutations resolve
/// identically everywhere.
fn resolve_chain(mutations: &[Mutation]) -> Vec<(BlockHash, Block)> {
    let mut chain: Vec<(BlockHash, Block)> = Vec::new();
    for m in mutations {
        if let Mutation::Insert { round, tag } = m {
            let parent = chain.last().map(|(h, _)| *h).unwrap_or(BlockHash::ZERO);
            chain.push(make_block(*round, parent, *tag));
        }
    }
    chain
}

/// Applies one mutation to any store, using the pre-resolved chain.
fn apply_one(
    store: &mut dyn ChainStore,
    m: &Mutation,
    chain: &[(BlockHash, Block)],
    inserted: &mut usize,
) {
    match m {
        Mutation::Insert { .. } => {
            let (h, b) = chain[*inserted].clone();
            store.insert(h, b);
            *inserted += 1;
        }
        Mutation::Notarize { index } => {
            store.mark_notarized(chain[*index].0, None);
        }
        Mutation::Finalize { index } => {
            let (h, b) = &chain[*index];
            store.mark_finalized(b.round, *h);
        }
    }
}

/// Applies a full mutation sequence to any store. `inserted` is the
/// number of Insert mutations already applied (continuation after a
/// crash point).
fn apply_mutations(
    store: &mut dyn ChainStore,
    mutations: &[Mutation],
    chain: &[(BlockHash, Block)],
    mut inserted: usize,
) {
    for m in mutations {
        apply_one(store, m, chain, &mut inserted);
    }
}

/// The reference states after each prefix of the mutation sequence, as
/// normalized snapshot bytes.
fn prefix_states(mutations: &[Mutation], chain: &[(BlockHash, Block)]) -> Vec<Vec<u8>> {
    let mut states = Vec::with_capacity(mutations.len() + 1);
    let mut store = BlockStore::new();
    states.push(ChainStore::snapshot(&store).to_bytes());
    let mut inserted = 0usize;
    for m in mutations {
        apply_one(&mut store, m, chain, &mut inserted);
        states.push(ChainStore::snapshot(&store).to_bytes());
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the log at ANY byte offset recovers a consistent
    /// prefix of the mutation history — never a gap, never garbage.
    #[test]
    fn truncated_log_replays_to_a_consistent_prefix(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        cut_permille in 0u64..=1000,
    ) {
        let mutations = script_to_mutations(&script);
        prop_assume!(!mutations.is_empty());
        let chain = resolve_chain(&mutations);

        let dir = scratch_dir(&format!("trunc-{:x}", fingerprint(&script, cut_permille)));
        {
            let mut wal = WalStore::open(&dir).unwrap();
            apply_mutations(&mut wal, &mutations, &chain, 0);
        }
        let path = dir.join("wal-000000.log");
        let full = fs::read(&path).unwrap();
        let cut = (full.len() * cut_permille as usize) / 1000;
        fs::write(&path, &full[..cut]).unwrap();

        let wal = WalStore::open(&dir).unwrap();
        let recovered = ChainStore::snapshot(&wal).to_bytes();
        let states = prefix_states(&mutations, &chain);
        prop_assert!(
            states.contains(&recovered),
            "recovered state must equal some mutation prefix (cut {cut}/{})",
            full.len()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Corrupting any single byte still yields a consistent prefix.
    #[test]
    fn corrupted_log_replays_to_a_consistent_prefix(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        corrupt_permille in 0u64..=1000,
    ) {
        let mutations = script_to_mutations(&script);
        prop_assume!(!mutations.is_empty());
        let chain = resolve_chain(&mutations);

        let dir = scratch_dir(&format!("corrupt-{:x}", fingerprint(&script, corrupt_permille)));
        {
            let mut wal = WalStore::open(&dir).unwrap();
            apply_mutations(&mut wal, &mutations, &chain, 0);
        }
        let path = dir.join("wal-000000.log");
        let mut bytes = fs::read(&path).unwrap();
        prop_assume!(!bytes.is_empty());
        let idx = (bytes.len() * corrupt_permille as usize) / 1000;
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 0x5A;
        fs::write(&path, &bytes).unwrap();

        let wal = WalStore::open(&dir).unwrap();
        let recovered = ChainStore::snapshot(&wal).to_bytes();
        let states = prefix_states(&mutations, &chain);
        prop_assert!(
            states.contains(&recovered),
            "recovered state must equal some mutation prefix (flipped byte {idx})"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// A crash-and-replay store is bit-identical to one that never
    /// crashed, at every crash point.
    #[test]
    fn restart_and_replay_is_bit_identical(
        script in proptest::collection::vec(any::<u8>(), 1..40),
        crash_permille in 0u64..=1000,
    ) {
        let mutations = script_to_mutations(&script);
        prop_assume!(mutations.len() >= 2);
        let chain = resolve_chain(&mutations);
        let crash_at = 1 + ((mutations.len() - 1) * crash_permille as usize) / 1000;
        let crash_at = crash_at.min(mutations.len() - 1);

        let dir = scratch_dir(&format!("replay-{:x}", fingerprint(&script, crash_permille)));
        {
            let mut wal = WalStore::open(&dir).unwrap();
            apply_mutations(&mut wal, &mutations[..crash_at], &chain, 0);
            // Drop = crash (no clean shutdown step exists).
        }
        {
            // Restart: replay, then run the remaining mutations.
            let mut wal = WalStore::open(&dir).unwrap();
            let done = mutations[..crash_at]
                .iter()
                .filter(|m| matches!(m, Mutation::Insert { .. }))
                .count();
            apply_mutations(&mut wal, &mutations[crash_at..], &chain, done);
            let replayed = ChainStore::snapshot(&wal).to_bytes();

            let mut uncrashed = BlockStore::new();
            apply_mutations(&mut uncrashed, &mutations, &chain, 0);
            prop_assert_eq!(
                replayed,
                ChainStore::snapshot(&uncrashed).to_bytes(),
                "crashed-and-replayed replica diverged from the uncrashed one"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Cheap deterministic name component so concurrent proptest cases use
/// distinct directories.
fn fingerprint(script: &[u8], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in script {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ salt
}
