//! The in-memory block tree (§4: "as the protocol advances, a tree of
//! blocks is constructed, starting from a genesis block that is at the
//! root").
//!
//! The store tracks every received block, which are notarized, and the
//! finalized chain. The genesis block is virtual: hash
//! [`BlockHash::ZERO`] at round 0, notarized and finalized by definition.
//!
//! With the default `retention = None` this reproduces the historical
//! behaviour bit-for-bit: nothing is dropped unless the engine explicitly
//! calls [`BlockStore::prune_below`]. With `retention = Some(k)` the store
//! additionally drops *everything* — finalized chain included — more than
//! `k` rounds below the finalized frontier after each finalization, so the
//! resident set plateaus on long runs.

use std::collections::{BTreeMap, HashMap, HashSet};

use banyan_types::certs::Notarization;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::{Block, ChainSnapshot};

use crate::ChainStore;

/// The block tree plus notarization/finalization bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    /// Every block we hold, by hash.
    blocks: HashMap<BlockHash, Block>,
    /// Hashes per round, in arrival order.
    by_round: BTreeMap<Round, Vec<BlockHash>>,
    /// Blocks known to be notarized (own quorum or received certificate).
    notarized: HashSet<BlockHash>,
    /// Retained notarization certificates (needed for proposals and
    /// round-advance broadcasts).
    notarizations: HashMap<BlockHash, Notarization>,
    /// The finalized block of each round (the canonical chain).
    finalized: BTreeMap<Round, BlockHash>,
    /// Highest finalized round ever seen. Cached so the value survives
    /// retention pruning of the `finalized` map.
    max_finalized: Round,
    /// If set, rounds more than this far below the finalized frontier are
    /// dropped entirely after each finalization.
    retention: Option<u64>,
}

impl BlockStore {
    /// An empty tree (genesis only).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tree that keeps at most `keep_rounds` rounds of history
    /// below the finalized frontier.
    pub fn with_retention(keep_rounds: u64) -> Self {
        Self {
            retention: Some(keep_rounds),
            ..Self::default()
        }
    }

    /// Sets (or clears) the retention window. `None` — the default —
    /// never drops finalized history.
    pub fn set_retention(&mut self, keep_rounds: Option<u64>) {
        self.retention = keep_rounds;
        self.enforce_retention();
    }

    /// True if `hash` identifies the virtual genesis block.
    pub fn is_genesis(hash: &BlockHash) -> bool {
        crate::is_genesis(hash)
    }

    /// Inserts a block, returning `false` if it was already present.
    pub fn insert(&mut self, hash: BlockHash, block: Block) -> bool {
        if self.blocks.contains_key(&hash) {
            return false;
        }
        self.by_round.entry(block.round).or_default().push(hash);
        self.blocks.insert(hash, block);
        true
    }

    /// Fetches a block by hash.
    pub fn get(&self, hash: &BlockHash) -> Option<&Block> {
        self.blocks.get(hash)
    }

    /// True if we hold the block (or it is genesis).
    pub fn contains(&self, hash: &BlockHash) -> bool {
        Self::is_genesis(hash) || self.blocks.contains_key(hash)
    }

    /// Hashes of blocks received for `round`.
    pub fn round_blocks(&self, round: Round) -> &[BlockHash] {
        self.by_round.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Marks a block notarized, keeping the certificate if given.
    pub fn mark_notarized(&mut self, hash: BlockHash, cert: Option<Notarization>) {
        self.notarized.insert(hash);
        if let Some(cert) = cert {
            self.notarizations.entry(hash).or_insert(cert);
        }
    }

    /// True if the block is notarized (genesis always is).
    pub fn is_notarized(&self, hash: &BlockHash) -> bool {
        Self::is_genesis(hash) || self.notarized.contains(hash)
    }

    /// The retained notarization certificate for a block, if any.
    pub fn notarization(&self, hash: &BlockHash) -> Option<&Notarization> {
        self.notarizations.get(hash)
    }

    /// Records the finalized block of a round.
    pub fn mark_finalized(&mut self, round: Round, hash: BlockHash) {
        self.finalized.insert(round, hash);
        // A finalized block is necessarily notarized.
        if !Self::is_genesis(&hash) {
            self.notarized.insert(hash);
        }
        if round > self.max_finalized {
            self.max_finalized = round;
        }
        self.enforce_retention();
    }

    /// The finalized block of `round`, if decided (genesis for round 0).
    pub fn finalized(&self, round: Round) -> Option<BlockHash> {
        if round == Round::GENESIS {
            return Some(BlockHash::ZERO);
        }
        self.finalized.get(&round).copied()
    }

    /// True if this specific block is final.
    pub fn is_finalized(&self, round: Round, hash: &BlockHash) -> bool {
        self.finalized(round) == Some(*hash)
    }

    /// Highest finalized round (0 if only genesis). Stable under
    /// retention pruning.
    pub fn max_finalized_round(&self) -> Round {
        self.max_finalized
    }

    /// Walks the parent chain from `tip` (exclusive of genesis) down to —
    /// but not including — round `stop_after`. Returns blocks in
    /// **ascending round order**, or `None` if an ancestor is missing from
    /// the store.
    ///
    /// This is the §4 implicit-finalization walk: explicitly finalizing a
    /// round-`k` block finalizes all its ancestors back to the previous
    /// finalized round.
    pub fn chain_to(&self, tip: &BlockHash, stop_after: Round) -> Option<Vec<(BlockHash, &Block)>> {
        let mut out = Vec::new();
        let mut cursor = *tip;
        loop {
            if Self::is_genesis(&cursor) {
                break;
            }
            let block = self.blocks.get(&cursor)?;
            if block.round <= stop_after {
                break;
            }
            out.push((cursor, block));
            cursor = block.parent;
        }
        out.reverse();
        Some(out)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are held.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Drops per-round indexes and blocks strictly below `round` that are
    /// not on the finalized chain (bounded memory for long runs).
    pub fn prune_below(&mut self, round: Round) {
        let doomed_rounds: Vec<Round> = self.by_round.range(..round).map(|(r, _)| *r).collect();
        for r in doomed_rounds {
            if let Some(hashes) = self.by_round.remove(&r) {
                for h in hashes {
                    if self.finalized.get(&r) != Some(&h) {
                        self.blocks.remove(&h);
                        self.notarized.remove(&h);
                        self.notarizations.remove(&h);
                    }
                }
            }
        }
    }

    /// Applies the retention window: drops rounds — finalized chain
    /// included — more than `retention` below the finalized frontier.
    fn enforce_retention(&mut self) {
        let Some(keep) = self.retention else {
            return;
        };
        let cutoff = Round(self.max_finalized.0.saturating_sub(keep));
        if cutoff == Round::GENESIS {
            return;
        }
        let doomed: Vec<Round> = self.by_round.range(..cutoff).map(|(r, _)| *r).collect();
        for r in doomed {
            if let Some(hashes) = self.by_round.remove(&r) {
                for h in hashes {
                    self.blocks.remove(&h);
                    self.notarized.remove(&h);
                    self.notarizations.remove(&h);
                }
            }
        }
        let doomed_fin: Vec<Round> = self.finalized.range(..cutoff).map(|(r, _)| *r).collect();
        for r in doomed_fin {
            self.finalized.remove(&r);
        }
    }

    /// The durable state as a normalized snapshot.
    pub fn snapshot(&self) -> ChainSnapshot {
        let mut snap = ChainSnapshot {
            blocks: self.blocks.iter().map(|(h, b)| (*h, b.clone())).collect(),
            notarized: self.notarized.iter().copied().collect(),
            notarizations: self.notarizations.values().cloned().collect(),
            justifies: Vec::new(),
            finalized: self.finalized.iter().map(|(r, h)| (*r, *h)).collect(),
            committed_round: self.max_finalized,
            committed_view: 0,
        };
        snap.normalize();
        snap
    }

    /// Rebuilds the store from a snapshot, discarding current contents
    /// but keeping the retention setting.
    pub fn restore(&mut self, snapshot: &ChainSnapshot) {
        let retention = self.retention;
        *self = Self::default();
        self.retention = retention;
        for (h, b) in &snapshot.blocks {
            self.insert(*h, b.clone());
        }
        for h in &snapshot.notarized {
            self.notarized.insert(*h);
        }
        for cert in &snapshot.notarizations {
            self.notarizations
                .entry(cert.block)
                .or_insert_with(|| cert.clone());
        }
        for (r, h) in &snapshot.finalized {
            self.finalized.insert(*r, *h);
            if !Self::is_genesis(h) {
                self.notarized.insert(*h);
            }
        }
        self.max_finalized = snapshot.max_finalized_round();
        self.enforce_retention();
    }
}

impl ChainStore for BlockStore {
    fn insert(&mut self, hash: BlockHash, block: Block) -> bool {
        BlockStore::insert(self, hash, block)
    }
    fn get(&self, hash: &BlockHash) -> Option<&Block> {
        BlockStore::get(self, hash)
    }
    fn contains(&self, hash: &BlockHash) -> bool {
        BlockStore::contains(self, hash)
    }
    fn round_blocks(&self, round: Round) -> &[BlockHash] {
        BlockStore::round_blocks(self, round)
    }
    fn mark_notarized(&mut self, hash: BlockHash, cert: Option<Notarization>) {
        BlockStore::mark_notarized(self, hash, cert)
    }
    fn is_notarized(&self, hash: &BlockHash) -> bool {
        BlockStore::is_notarized(self, hash)
    }
    fn notarization(&self, hash: &BlockHash) -> Option<&Notarization> {
        BlockStore::notarization(self, hash)
    }
    fn mark_finalized(&mut self, round: Round, hash: BlockHash) {
        BlockStore::mark_finalized(self, round, hash)
    }
    fn finalized(&self, round: Round) -> Option<BlockHash> {
        BlockStore::finalized(self, round)
    }
    fn is_finalized(&self, round: Round, hash: &BlockHash) -> bool {
        BlockStore::is_finalized(self, round, hash)
    }
    fn max_finalized_round(&self) -> Round {
        BlockStore::max_finalized_round(self)
    }
    fn chain_to(&self, tip: &BlockHash, stop_after: Round) -> Option<Vec<(BlockHash, &Block)>> {
        BlockStore::chain_to(self, tip, stop_after)
    }
    fn len(&self) -> usize {
        BlockStore::len(self)
    }
    fn is_empty(&self) -> bool {
        BlockStore::is_empty(self)
    }
    fn prune_below(&mut self, round: Round) {
        BlockStore::prune_below(self, round)
    }
    fn snapshot(&self) -> ChainSnapshot {
        BlockStore::snapshot(self)
    }
    fn restore(&mut self, snapshot: &ChainSnapshot) {
        BlockStore::restore(self, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_crypto::Signature;
    use banyan_types::ids::{Rank, ReplicaId};
    use banyan_types::payload::Payload;
    use banyan_types::time::Time;
    use banyan_types::Wire;

    fn block(round: u64, parent: BlockHash, tag: u8) -> (BlockHash, Block) {
        let b = Block {
            round: Round(round),
            proposer: ReplicaId(tag as u16),
            rank: Rank(0),
            parent,
            proposed_at: Time(round),
            payload: Payload::synthetic(100, tag as u64),
            signature: Signature::zero(),
        };
        (b.hash(1024), b)
    }

    #[test]
    fn genesis_is_always_notarized_and_finalized() {
        let store = BlockStore::new();
        assert!(store.is_notarized(&BlockHash::ZERO));
        assert_eq!(store.finalized(Round::GENESIS), Some(BlockHash::ZERO));
        assert!(store.is_finalized(Round::GENESIS, &BlockHash::ZERO));
        assert_eq!(store.max_finalized_round(), Round::GENESIS);
    }

    #[test]
    fn insert_and_lookup() {
        let mut store = BlockStore::new();
        let (h, b) = block(1, BlockHash::ZERO, 1);
        assert!(store.insert(h, b.clone()));
        assert!(!store.insert(h, b), "duplicate insert returns false");
        assert!(store.contains(&h));
        assert_eq!(store.get(&h).unwrap().round, Round(1));
        assert_eq!(store.round_blocks(Round(1)), &[h]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn notarization_tracking() {
        let mut store = BlockStore::new();
        let (h, b) = block(1, BlockHash::ZERO, 1);
        store.insert(h, b);
        assert!(!store.is_notarized(&h));
        store.mark_notarized(h, None);
        assert!(store.is_notarized(&h));
        assert!(store.notarization(&h).is_none(), "no cert retained");
    }

    #[test]
    fn chain_walk_ascending() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        let (h3, b3) = block(3, h2, 3);
        store.insert(h1, b1);
        store.insert(h2, b2);
        store.insert(h3, b3);

        let chain = store.chain_to(&h3, Round::GENESIS).unwrap();
        assert_eq!(
            chain.iter().map(|(h, _)| *h).collect::<Vec<_>>(),
            vec![h1, h2, h3]
        );

        // Stop after round 1: only rounds 2..=3.
        let chain = store.chain_to(&h3, Round(1)).unwrap();
        assert_eq!(
            chain.iter().map(|(h, _)| *h).collect::<Vec<_>>(),
            vec![h2, h3]
        );
    }

    #[test]
    fn chain_walk_detects_missing_ancestor() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        // h1 never inserted.
        store.insert(h2, b2.clone());
        assert!(store.chain_to(&h2, Round::GENESIS).is_none());
        store.insert(h1, b1);
        assert!(store.chain_to(&h2, Round::GENESIS).is_some());
    }

    #[test]
    fn finalization_chain() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        store.insert(h1, b1);
        store.mark_finalized(Round(1), h1);
        assert!(store.is_finalized(Round(1), &h1));
        assert!(store.is_notarized(&h1), "finalized implies notarized");
        assert_eq!(store.max_finalized_round(), Round(1));
    }

    #[test]
    fn prune_keeps_finalized_chain() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h1b, b1b) = block(1, BlockHash::ZERO, 9); // fork at round 1
        let (h2, b2) = block(2, h1, 2);
        store.insert(h1, b1);
        store.insert(h1b, b1b);
        store.insert(h2, b2);
        store.mark_finalized(Round(1), h1);

        store.prune_below(Round(2));
        assert!(store.contains(&h1), "finalized block survives pruning");
        assert!(!store.contains(&h1b), "losing fork pruned");
        assert!(store.contains(&h2), "rounds at/after cutoff survive");
        assert!(
            store.round_blocks(Round(1)).is_empty(),
            "round index pruned"
        );
    }

    #[test]
    fn retention_plateaus_store_size_on_long_runs() {
        // A "long run": 10_000 rounds, one block finalized per round, with a
        // losing fork every 4th round. Without retention the maps grow
        // without bound; with a 64-round window the resident set plateaus.
        let mut store = BlockStore::with_retention(64);
        let mut unbounded = BlockStore::new();
        let mut parent = BlockHash::ZERO;
        let mut peak = 0usize;
        for round in 1..=10_000u64 {
            let (h, b) = block(round, parent, 1);
            store.insert(h, b.clone());
            unbounded.insert(h, b);
            if round % 4 == 0 {
                let (hf, bf) = block(round, parent, 7);
                store.insert(hf, bf.clone());
                unbounded.insert(hf, bf);
            }
            store.mark_finalized(Round(round), h);
            unbounded.mark_finalized(Round(round), h);
            parent = h;
            peak = peak.max(store.len());
        }
        assert!(unbounded.len() >= 10_000, "control store grows unboundedly");
        // The window spans 65 live rounds at ≤ 2 blocks each.
        assert!(peak <= 130, "retained store plateaus (peak {peak} blocks)");
        assert_eq!(
            store.max_finalized_round(),
            Round(10_000),
            "frontier survives pruning"
        );
        assert!(
            store.finalized(Round(1)).is_none(),
            "ancient finalized entries dropped under retention"
        );
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let mut store = BlockStore::new();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        let (h2b, b2b) = block(2, h1, 9);
        store.insert(h1, b1);
        store.insert(h2, b2);
        store.insert(h2b, b2b);
        store.mark_notarized(h1, None);
        store.mark_notarized(h2, None);
        store.mark_finalized(Round(1), h1);

        let snap = store.snapshot();
        let mut recovered = BlockStore::new();
        recovered.restore(&snap);
        assert_eq!(recovered.snapshot().to_bytes(), snap.to_bytes());
        assert_eq!(recovered.len(), store.len());
        assert_eq!(recovered.max_finalized_round(), Round(1));
        assert!(recovered.is_notarized(&h2));
        assert!(recovered.is_finalized(Round(1), &h1));

        // Restore over a dirty store discards the old contents.
        let mut dirty = BlockStore::new();
        let (hx, bx) = block(5, BlockHash::ZERO, 42);
        dirty.insert(hx, bx);
        dirty.restore(&snap);
        assert!(!dirty.contains(&hx));
        assert_eq!(dirty.snapshot().to_bytes(), snap.to_bytes());
    }

    #[test]
    fn works_through_the_chain_store_trait_object() {
        let mut boxed: Box<dyn ChainStore> = Box::new(BlockStore::new());
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        assert!(boxed.insert(h1, b1));
        boxed.mark_finalized(Round(1), h1);
        assert_eq!(boxed.max_finalized_round(), Round(1));
        assert_eq!(boxed.wal_bytes(), 0);
        boxed.sync();
        let snap = boxed.snapshot();
        assert_eq!(snap.blocks.len(), 1);
    }
}
