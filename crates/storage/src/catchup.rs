//! [`CatchUpState`]: the driver-level state machine that brings a
//! recovered or lagging replica to the live commit frontier.
//!
//! Engines are pure state machines and never see catch-up traffic; the
//! *driver* (simulator event loop or TCP replica loop) owns one
//! `CatchUpState` per recovering replica and turns its [`CatchUpStep`]s
//! into `SyncMsg` traffic:
//!
//! ```text
//!           ┌────────┐  FrontierProbe (broadcast)
//!   start ─▶│ Probe  │──────────────────────────────┐
//!           └────────┘                              ▼
//!           ┌────────┐  on_frontier(peer) sets target
//!           │ Fetch  │◀─────────────────────────────┘
//!           └────────┘  RequestRange { from, to } to one peer
//!               │  ▲
//!    ResponseBatch │ on_progress(local) advances the window
//!               ▼  │
//!           ┌────────┐  local ≥ target, or the probe/fetch deadline
//!           │  Done  │  lapses too many times (peers that never serve
//!           └────────┘  ranges — engines with native view sync)
//! ```
//!
//! Every transition is driven by explicit `(event, now)` calls, so the
//! machine is deterministic and simulation-friendly: no clocks, no I/O.

use banyan_types::ids::Round;
use banyan_types::time::{Duration, Time};

/// How many rounds one `RequestRange` asks for.
pub const DEFAULT_BATCH_ROUNDS: u64 = 32;

/// Consecutive expired fetch windows before giving up (the peer set does
/// not serve ranged fetches — rely on the engine's native sync).
pub const MAX_STALLED_FETCHES: u32 = 3;

/// What the driver should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CatchUpStep {
    /// Broadcast a `SyncMsg::FrontierProbe` to learn the commit frontier.
    Probe,
    /// Send `SyncMsg::RequestRange { from_round, to_round }` to a peer.
    Fetch {
        /// First round wanted (inclusive).
        from_round: Round,
        /// Last round wanted (inclusive).
        to_round: Round,
    },
    /// A probe or fetch is in flight and its deadline has not lapsed.
    Wait,
    /// Caught up (or gave up): stop driving sync traffic.
    Done,
}

/// Catch-up progress for one recovering replica.
#[derive(Clone, Debug)]
pub struct CatchUpState {
    /// Our finalized frontier (advances via [`CatchUpState::on_progress`]).
    local: Round,
    /// Highest peer frontier reported so far.
    target: Option<Round>,
    /// Whether the initial probe was issued.
    probed: bool,
    /// The in-flight fetch window, if any.
    in_flight: Option<(Round, Round)>,
    /// Deadline for the in-flight probe/fetch.
    deadline: Time,
    /// Per-step timeout.
    timeout: Duration,
    /// Rounds per fetch.
    batch: u64,
    /// Consecutive deadline expiries without progress.
    stalled: u32,
    /// Terminal flag.
    done: bool,
    /// Number of Probe/Fetch steps issued (metrics: `sync_requests`).
    requests_issued: u64,
    /// When catch-up started (metrics: recovery latency).
    started_at: Time,
}

impl CatchUpState {
    /// Starts catch-up for a replica whose finalized frontier is `local`.
    pub fn new(local: Round, now: Time, timeout: Duration) -> Self {
        CatchUpState {
            local,
            target: None,
            probed: false,
            in_flight: None,
            deadline: now,
            timeout,
            batch: DEFAULT_BATCH_ROUNDS,
            stalled: 0,
            done: false,
            requests_issued: 0,
            started_at: now,
        }
    }

    /// Overrides the fetch window size.
    pub fn with_batch(mut self, rounds: u64) -> Self {
        self.batch = rounds.max(1);
        self
    }

    /// A peer reported its finalized frontier.
    pub fn on_frontier(&mut self, peer_frontier: Round) {
        if self.done {
            return;
        }
        if self.target.is_none_or(|t| peer_frontier > t) {
            self.target = Some(peer_frontier);
        }
    }

    /// Our own finalized frontier advanced (batch adopted, or live
    /// protocol progress).
    pub fn on_progress(&mut self, local_frontier: Round) {
        if local_frontier > self.local {
            self.local = local_frontier;
            self.stalled = 0;
            if let Some((_, to)) = self.in_flight {
                if self.local >= to {
                    self.in_flight = None;
                }
            }
        }
    }

    /// Decides the next action. Call after any event that may have
    /// changed the picture (frontier report, batch adoption, timer).
    pub fn step(&mut self, now: Time) -> CatchUpStep {
        if self.done {
            return CatchUpStep::Done;
        }
        if let Some(target) = self.target {
            if self.local >= target {
                self.done = true;
                return CatchUpStep::Done;
            }
        }
        if self.in_flight.is_some() || (self.probed && self.target.is_none()) {
            if now < self.deadline {
                return CatchUpStep::Wait;
            }
            // Deadline lapsed without the response we needed.
            self.in_flight = None;
            self.stalled += 1;
            if self.stalled >= MAX_STALLED_FETCHES {
                self.done = true;
                return CatchUpStep::Done;
            }
        }
        match self.target {
            None => {
                self.probed = true;
                self.deadline = now + self.timeout;
                self.requests_issued += 1;
                CatchUpStep::Probe
            }
            Some(target) => {
                let from = self.local.next();
                let to = Round(target.0.min(self.local.0 + self.batch));
                self.in_flight = Some((from, to));
                self.deadline = now + self.timeout;
                self.requests_issued += 1;
                CatchUpStep::Fetch {
                    from_round: from,
                    to_round: to,
                }
            }
        }
    }

    /// True once the machine reached its terminal state.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Our current view of the local frontier.
    pub fn local(&self) -> Round {
        self.local
    }

    /// The highest peer frontier learned, if any.
    pub fn target(&self) -> Option<Round> {
        self.target
    }

    /// Probe/fetch requests issued so far (metrics: `sync_requests`).
    pub fn requests_issued(&self) -> u64 {
        self.requests_issued
    }

    /// When this catch-up began (metrics: recovery latency).
    pub fn started_at(&self) -> Time {
        self.started_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration(10);

    #[test]
    fn probes_then_fetches_then_finishes() {
        let mut cu = CatchUpState::new(Round(5), Time(0), TICK);
        assert_eq!(cu.step(Time(0)), CatchUpStep::Probe);
        assert_eq!(cu.step(Time(1)), CatchUpStep::Wait, "probe in flight");

        cu.on_frontier(Round(40));
        cu.on_frontier(Round(60));
        assert_eq!(
            cu.step(Time(2)),
            CatchUpStep::Fetch {
                from_round: Round(6),
                to_round: Round(37)
            },
            "window capped at batch size, target keeps the max report"
        );
        assert_eq!(cu.step(Time(3)), CatchUpStep::Wait);

        cu.on_progress(Round(37));
        assert_eq!(
            cu.step(Time(4)),
            CatchUpStep::Fetch {
                from_round: Round(38),
                to_round: Round(60)
            }
        );
        cu.on_progress(Round(60));
        assert_eq!(cu.step(Time(5)), CatchUpStep::Done);
        assert!(cu.is_done());
        assert_eq!(cu.requests_issued(), 3);
    }

    #[test]
    fn already_caught_up_finishes_immediately() {
        let mut cu = CatchUpState::new(Round(10), Time(0), TICK);
        cu.on_frontier(Round(8));
        assert_eq!(cu.step(Time(0)), CatchUpStep::Done);
    }

    #[test]
    fn gives_up_after_repeated_silent_windows() {
        let mut cu = CatchUpState::new(Round(0), Time(0), TICK);
        assert_eq!(cu.step(Time(0)), CatchUpStep::Probe);
        cu.on_frontier(Round(100));
        let mut now = Time(0);
        let mut fetches = 0;
        loop {
            now += TICK; // lapse every deadline, never deliver
            match cu.step(now) {
                CatchUpStep::Fetch { .. } => fetches += 1,
                CatchUpStep::Done => break,
                step => panic!("unexpected step {step:?}"),
            }
        }
        assert_eq!(
            fetches, MAX_STALLED_FETCHES as usize,
            "stalled fetch windows bounded before giving up"
        );
        assert!(cu.is_done());
    }

    #[test]
    fn probe_deadline_without_any_frontier_gives_up() {
        let mut cu = CatchUpState::new(Round(0), Time(0), TICK);
        assert_eq!(cu.step(Time(0)), CatchUpStep::Probe);
        assert_eq!(cu.step(Time(5)), CatchUpStep::Wait);
        // Silence: each lapsed window re-probes until the stall cap hits.
        let mut now = Time(0);
        let mut probes = 0;
        loop {
            now += TICK;
            match cu.step(now) {
                CatchUpStep::Probe => probes += 1,
                CatchUpStep::Done => break,
                step => panic!("unexpected step {step:?}"),
            }
        }
        assert!(probes <= MAX_STALLED_FETCHES as usize);
        assert!(cu.is_done());
    }

    #[test]
    fn progress_resets_the_stall_counter() {
        let mut cu = CatchUpState::new(Round(0), Time(0), TICK);
        cu.on_frontier(Round(100));
        assert!(matches!(cu.step(Time(0)), CatchUpStep::Fetch { .. }));
        // One silent window...
        assert!(matches!(cu.step(Time(10)), CatchUpStep::Fetch { .. }));
        // ...then progress: the budget refills.
        cu.on_progress(Round(32));
        assert!(matches!(cu.step(Time(20)), CatchUpStep::Fetch { .. }));
        assert!(matches!(cu.step(Time(30)), CatchUpStep::Fetch { .. }));
        assert!(!cu.is_done());
    }
}
