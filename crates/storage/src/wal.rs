//! [`WalStore`]: the write-ahead-logged chain store.
//!
//! Every mutation (block insert, notarization, finalization) is appended
//! to a segmented log **before** it touches the in-memory cache, so the
//! cache is always a pure function of the bytes on disk. Records are
//! length-prefixed and CRC-checksummed:
//!
//! ```text
//! ┌──────────┬──────────┬────────────────────────────┐
//! │ len: u32 │ crc: u32 │ payload: tag u8 + body     │  (little-endian)
//! └──────────┴──────────┴────────────────────────────┘
//! tag 0 = Block { hash, block }         tag 2 = Finalize { round, hash }
//! tag 1 = Notarize { hash, cert? }      tag 3 = Checkpoint(ChainSnapshot)
//! ```
//!
//! [`WalStore::open`] replays every segment in ascending order and stops at
//! the **first** record whose length, checksum, or decode fails — a torn
//! tail from a crash mid-write. The torn tail is truncated and any later
//! segments are deleted, so recovery always yields a consistent *prefix*
//! of the mutation history (never a gap).
//!
//! When the live segment exceeds the rotation threshold (see
//! [`WalStore::open_with`]), the store
//! rotates: it opens a fresh segment whose first record is a
//! `Checkpoint` of the current state and deletes all older segments —
//! this is how log bytes "wholly below the commit frontier" are pruned
//! while keeping recovery single-pass.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use banyan_types::certs::Notarization;
use banyan_types::codec::{CodecError, Reader, Wire, Writer, MAX_LEN};
use banyan_types::ids::{BlockHash, Round};
use banyan_types::{Block, ChainSnapshot};

use crate::memory::BlockStore;
use crate::ChainStore;

/// Default segment rotation threshold: 4 MiB of log per segment.
pub const DEFAULT_SEGMENT_LIMIT: u64 = 4 << 20;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Hand-rolled so the
/// workspace stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One durable mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum WalRecord {
    /// A block entered the store.
    Block { hash: BlockHash, block: Block },
    /// A block was marked notarized (certificate retained if present).
    Notarize {
        hash: BlockHash,
        cert: Option<Notarization>,
    },
    /// A round's block was finalized.
    Finalize { round: Round, hash: BlockHash },
    /// Full-state checkpoint: replay restarts from here. Written as the
    /// first record of each rotated segment.
    Checkpoint(ChainSnapshot),
}

impl Wire for WalRecord {
    fn encode(&self, out: &mut Writer) {
        match self {
            WalRecord::Block { hash, block } => {
                out.u8(0);
                out.raw(&hash.0);
                block.encode(out);
            }
            WalRecord::Notarize { hash, cert } => {
                out.u8(1);
                out.raw(&hash.0);
                out.option(cert);
            }
            WalRecord::Finalize { round, hash } => {
                out.u8(2);
                out.u64(round.0);
                out.raw(&hash.0);
            }
            WalRecord::Checkpoint(snap) => {
                out.u8(3);
                snap.encode(out);
            }
        }
    }

    fn decode(input: &mut Reader<'_>) -> Result<Self, CodecError> {
        match input.u8()? {
            0 => Ok(WalRecord::Block {
                hash: BlockHash(input.bytes32()?),
                block: Block::decode(input)?,
            }),
            1 => Ok(WalRecord::Notarize {
                hash: BlockHash(input.bytes32()?),
                cert: input.option()?,
            }),
            2 => Ok(WalRecord::Finalize {
                round: Round(input.u64()?),
                hash: BlockHash(input.bytes32()?),
            }),
            3 => Ok(WalRecord::Checkpoint(ChainSnapshot::decode(input)?)),
            _ => Err(CodecError::Invalid("wal record tag")),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            WalRecord::Block { block, .. } => 1 + 32 + block.encoded_len(),
            WalRecord::Notarize { cert, .. } => {
                1 + 32 + 1 + cert.as_ref().map_or(0, Wire::encoded_len)
            }
            WalRecord::Finalize { .. } => 1 + 8 + 32,
            WalRecord::Checkpoint(snap) => 1 + snap.encoded_len(),
        }
    }
}

/// Errors from opening or appending to the log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.log"))
}

/// Splits a raw segment buffer into records, returning the decoded
/// records and the byte offset of the first torn/corrupt record (equal to
/// `buf.len()` when the whole segment is clean).
fn scan_segment(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_LEN || buf.len() - pos - 8 < len {
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = WalRecord::from_bytes(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, pos)
}

/// The write-ahead-logged chain store: a [`BlockStore`] cache kept as a
/// pure function of an on-disk segmented log.
#[derive(Debug)]
pub struct WalStore {
    mem: BlockStore,
    dir: PathBuf,
    file: File,
    /// Index of the live (highest-numbered) segment.
    segment: u64,
    /// Index of the oldest live segment (older ones were pruned).
    oldest_segment: u64,
    /// Bytes in the live segment.
    segment_bytes: u64,
    /// Bytes across all live segments.
    total_bytes: u64,
    /// Rotation threshold for the live segment.
    segment_limit: u64,
    /// When true, fsync after every append (durability over throughput).
    sync_on_append: bool,
}

impl WalStore {
    /// Opens (or creates) the log directory and replays it into memory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalError> {
        Self::open_with(dir, DEFAULT_SEGMENT_LIMIT, false)
    }

    /// [`WalStore::open`] with explicit rotation threshold and fsync
    /// policy.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        segment_limit: u64,
        sync_on_append: bool,
    ) -> Result<Self, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut segments: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                segments.push(idx);
            }
        }
        segments.sort_unstable();

        let mut mem = BlockStore::new();
        let mut total_bytes = 0u64;
        let mut live: Option<(u64, u64)> = None; // (segment, bytes)
        let mut torn_at: Option<(usize, usize)> = None; // (position in `segments`, clean offset)
        for (i, &idx) in segments.iter().enumerate() {
            let path = segment_path(&dir, idx);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let (records, clean) = scan_segment(&buf);
            for record in records {
                apply(&mut mem, record);
            }
            total_bytes += clean as u64;
            live = Some((idx, clean as u64));
            if clean < buf.len() {
                torn_at = Some((i, clean));
                break;
            }
        }

        // Torn tail: truncate the damaged segment at its last clean record
        // and delete every later segment — recovery is a consistent prefix.
        if let Some((i, clean)) = torn_at {
            let path = segment_path(&dir, segments[i]);
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(clean as u64)?;
            f.sync_all()?;
            for &idx in &segments[i + 1..] {
                fs::remove_file(segment_path(&dir, idx))?;
            }
        }

        let (segment, segment_bytes) = live.unwrap_or((0, 0));
        let oldest_segment = segments.first().copied().unwrap_or(segment);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, segment))?;
        Ok(WalStore {
            mem,
            dir,
            file,
            segment,
            oldest_segment,
            segment_bytes,
            total_bytes,
            segment_limit,
            sync_on_append,
        })
    }

    /// Sets (or clears) the in-memory retention window (see
    /// [`BlockStore::set_retention`]). The log itself is pruned by
    /// segment rotation, not by this knob.
    pub fn set_retention(&mut self, keep_rounds: Option<u64>) {
        self.mem.set_retention(keep_rounds);
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read access to the in-memory cache.
    pub fn cache(&self) -> &BlockStore {
        &self.mem
    }

    fn append(&mut self, record: &WalRecord) {
        let payload = record.to_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).expect("wal append");
        if self.sync_on_append {
            self.file.sync_data().expect("wal fsync");
        }
        self.segment_bytes += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        self.maybe_rotate();
    }

    /// Rotates to a fresh segment once the live one exceeds the limit:
    /// the new segment opens with a checkpoint of current state and all
    /// older segments — wholly below that checkpoint — are deleted.
    fn maybe_rotate(&mut self) {
        if self.segment_bytes < self.segment_limit {
            return;
        }
        let next = self.segment + 1;
        let snap = self.mem.snapshot();
        let record = WalRecord::Checkpoint(snap);
        let payload = record.to_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))
            .expect("wal rotate");
        file.write_all(&frame).expect("wal checkpoint");
        file.sync_data().expect("wal checkpoint fsync");

        for idx in self.oldest_segment..=self.segment {
            let _ = fs::remove_file(segment_path(&self.dir, idx));
        }
        self.file = file;
        self.oldest_segment = next;
        self.segment = next;
        self.segment_bytes = frame.len() as u64;
        self.total_bytes = frame.len() as u64;
    }
}

fn apply(mem: &mut BlockStore, record: WalRecord) {
    match record {
        WalRecord::Block { hash, block } => {
            mem.insert(hash, block);
        }
        WalRecord::Notarize { hash, cert } => mem.mark_notarized(hash, cert),
        WalRecord::Finalize { round, hash } => mem.mark_finalized(round, hash),
        WalRecord::Checkpoint(snap) => mem.restore(&snap),
    }
}

impl ChainStore for WalStore {
    fn insert(&mut self, hash: BlockHash, block: Block) -> bool {
        // Cache first, then log: `append` may rotate, and the rotation
        // checkpoint must include this mutation (the old segment holding
        // its record is deleted).
        if !self.mem.insert(hash, block.clone()) {
            return false;
        }
        self.append(&WalRecord::Block { hash, block });
        true
    }

    fn get(&self, hash: &BlockHash) -> Option<&Block> {
        self.mem.get(hash)
    }

    fn contains(&self, hash: &BlockHash) -> bool {
        self.mem.contains(hash)
    }

    fn round_blocks(&self, round: Round) -> &[BlockHash] {
        self.mem.round_blocks(round)
    }

    fn mark_notarized(&mut self, hash: BlockHash, cert: Option<Notarization>) {
        // Skip the append when it would change nothing durable: already
        // notarized and either no new certificate or one already retained.
        let news = !self.mem.is_notarized(&hash)
            || (cert.is_some() && self.mem.notarization(&hash).is_none());
        self.mem.mark_notarized(hash, cert.clone());
        if news {
            self.append(&WalRecord::Notarize { hash, cert });
        }
    }

    fn is_notarized(&self, hash: &BlockHash) -> bool {
        self.mem.is_notarized(hash)
    }

    fn notarization(&self, hash: &BlockHash) -> Option<&Notarization> {
        self.mem.notarization(hash)
    }

    fn mark_finalized(&mut self, round: Round, hash: BlockHash) {
        let news = self.mem.finalized(round) != Some(hash);
        self.mem.mark_finalized(round, hash);
        if news {
            self.append(&WalRecord::Finalize { round, hash });
        }
    }

    fn finalized(&self, round: Round) -> Option<BlockHash> {
        self.mem.finalized(round)
    }

    fn is_finalized(&self, round: Round, hash: &BlockHash) -> bool {
        self.mem.is_finalized(round, hash)
    }

    fn max_finalized_round(&self) -> Round {
        self.mem.max_finalized_round()
    }

    fn chain_to(&self, tip: &BlockHash, stop_after: Round) -> Option<Vec<(BlockHash, &Block)>> {
        self.mem.chain_to(tip, stop_after)
    }

    fn len(&self) -> usize {
        self.mem.len()
    }

    fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    fn prune_below(&mut self, round: Round) {
        // In-memory prune only; log bytes are reclaimed at segment
        // rotation, which re-checkpoints the pruned state.
        self.mem.prune_below(round);
    }

    fn snapshot(&self) -> ChainSnapshot {
        self.mem.snapshot()
    }

    fn restore(&mut self, snapshot: &ChainSnapshot) {
        self.mem.restore(snapshot);
        self.append(&WalRecord::Checkpoint(snapshot.clone()));
    }

    fn wal_bytes(&self) -> u64 {
        self.total_bytes
    }

    fn sync(&mut self) {
        self.file.sync_data().expect("wal sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_crypto::Signature;
    use banyan_types::ids::{Rank, ReplicaId};
    use banyan_types::payload::Payload;
    use banyan_types::time::Time;

    fn block(round: u64, parent: BlockHash, tag: u8) -> (BlockHash, Block) {
        let b = Block {
            round: Round(round),
            proposer: ReplicaId(tag as u16),
            rank: Rank(0),
            parent,
            proposed_at: Time(round),
            payload: Payload::synthetic(100, tag as u64),
            signature: Signature::zero(),
        };
        (b.hash(1024), b)
    }

    fn scratch_dir(name: &str) -> PathBuf {
        // Keep test artifacts inside the repo's target directory.
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/wal-tests")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn reopen_recovers_all_mutations() {
        let dir = scratch_dir("reopen");
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        let expected;
        {
            let mut wal = WalStore::open(&dir).unwrap();
            assert!(wal.insert(h1, b1));
            assert!(wal.insert(h2, b2));
            wal.mark_notarized(h1, None);
            wal.mark_finalized(Round(1), h1);
            assert!(wal.wal_bytes() > 0);
            expected = wal.snapshot();
        }
        let wal = WalStore::open(&dir).unwrap();
        assert_eq!(wal.len(), 2);
        assert!(wal.is_notarized(&h1));
        assert!(wal.is_finalized(Round(1), &h1));
        assert_eq!(wal.max_finalized_round(), Round(1));
        assert_eq!(
            wal.snapshot().to_bytes(),
            expected.to_bytes(),
            "replayed state is bit-identical"
        );
    }

    #[test]
    fn duplicate_marks_do_not_grow_the_log() {
        let dir = scratch_dir("dedup");
        let mut wal = WalStore::open(&dir).unwrap();
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        wal.insert(h1, b1.clone());
        wal.mark_notarized(h1, None);
        wal.mark_finalized(Round(1), h1);
        let bytes = wal.wal_bytes();
        assert!(!wal.insert(h1, b1), "duplicate insert rejected");
        wal.mark_notarized(h1, None);
        wal.mark_finalized(Round(1), h1);
        assert_eq!(
            wal.wal_bytes(),
            bytes,
            "idempotent mutations append nothing"
        );
    }

    #[test]
    fn torn_tail_is_truncated_to_a_consistent_prefix() {
        let dir = scratch_dir("torn");
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        {
            let mut wal = WalStore::open(&dir).unwrap();
            wal.insert(h1, b1);
            wal.insert(h2, b2);
        }
        // Simulate a crash mid-append: chop bytes off the live segment.
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();

        let wal = WalStore::open(&dir).unwrap();
        assert!(wal.contains(&h1), "clean prefix survives");
        assert!(!wal.contains(&h2), "torn record dropped");
        let truncated = fs::metadata(&path).unwrap().len();
        assert!(
            truncated < full.len() as u64 - 7,
            "torn tail physically truncated"
        );
        // A second reopen is stable: same prefix, no further truncation.
        drop(wal);
        let wal = WalStore::open(&dir).unwrap();
        assert!(wal.contains(&h1));
        assert_eq!(fs::metadata(&path).unwrap().len(), truncated);
    }

    #[test]
    fn corrupt_middle_record_drops_the_suffix() {
        let dir = scratch_dir("corrupt");
        let (h1, b1) = block(1, BlockHash::ZERO, 1);
        let (h2, b2) = block(2, h1, 2);
        let first_len;
        {
            let mut wal = WalStore::open(&dir).unwrap();
            wal.insert(h1, b1);
            first_len = wal.wal_bytes();
            wal.insert(h2, b2);
        }
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the second record.
        let idx = first_len as usize + 12;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let wal = WalStore::open(&dir).unwrap();
        assert!(wal.contains(&h1));
        assert!(!wal.contains(&h2), "suffix after corruption dropped");
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            first_len,
            "segment truncated at last clean record"
        );
        // Appends continue cleanly after recovery.
        drop(wal);
        let mut wal = WalStore::open(&dir).unwrap();
        let (h3, b3) = block(3, h1, 3);
        wal.insert(h3, b3);
        drop(wal);
        let wal = WalStore::open(&dir).unwrap();
        assert!(wal.contains(&h3));
    }

    #[test]
    fn rotation_checkpoints_and_prunes_old_segments() {
        let dir = scratch_dir("rotate");
        // Tiny limit: rotate roughly every record.
        let mut wal = WalStore::open_with(&dir, 256, false).unwrap();
        let mut parent = BlockHash::ZERO;
        for round in 1..=20u64 {
            let (h, b) = block(round, parent, 1);
            wal.insert(h, b);
            wal.mark_finalized(Round(round), h);
            parent = h;
        }
        let expected = wal.snapshot();
        let live_segments = fs::read_dir(&dir).unwrap().count();
        assert!(
            live_segments <= 2,
            "old segments pruned (found {live_segments})"
        );
        assert!(wal.wal_bytes() > 0);
        drop(wal);
        let wal = WalStore::open(&dir).unwrap();
        assert_eq!(
            wal.snapshot().to_bytes(),
            expected.to_bytes(),
            "checkpointed state replays bit-identically"
        );
        assert_eq!(wal.max_finalized_round(), Round(20));
    }

    #[test]
    fn empty_directory_opens_as_fresh_store() {
        let dir = scratch_dir("fresh");
        let wal = WalStore::open(&dir).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.max_finalized_round(), Round::GENESIS);
        assert_eq!(wal.wal_bytes(), 0);
    }
}
