//! Persistent chain storage for the Banyan reproduction.
//!
//! Three pieces, layered:
//!
//! * [`ChainStore`] — the storage abstraction engines program against: the
//!   block tree plus notarization/finalization bookkeeping, a snapshot of
//!   the durable state, and (for persistent backends) WAL accounting.
//! * [`BlockStore`] — the in-memory backend. Bit-for-bit the store the
//!   engines have always used, now with an optional retention knob that
//!   prunes state below the finalized frontier so long runs plateau
//!   instead of growing without bound.
//! * [`WalStore`] — the write-ahead-logged backend: every mutation is
//!   appended to a segmented log of length-prefixed, CRC-checksummed
//!   records before touching the in-memory cache. [`WalStore::open`]
//!   replays the log (tolerating torn tails), so a crashed replica
//!   recovers exactly the prefix of mutations that reached disk.
//!
//! [`CatchUpState`] is the driver-level state machine that brings a
//! recovered (or lagging) replica from its restored frontier to the live
//! commit frontier via the `SyncMsg` ranged-fetch protocol. It lives here
//! — not in the engines — because catch-up is I/O scheduling, and engines
//! are pure state machines.

#![warn(missing_docs)]

pub mod catchup;
pub mod memory;
pub mod wal;

use banyan_types::certs::Notarization;
use banyan_types::ids::{BlockHash, Round};
use banyan_types::{Block, ChainSnapshot};

pub use catchup::{CatchUpState, CatchUpStep};
pub use memory::BlockStore;
pub use wal::{WalStore, DEFAULT_SEGMENT_LIMIT};

/// True if `hash` identifies the virtual genesis block (round 0, notarized
/// and finalized by definition).
pub fn is_genesis(hash: &BlockHash) -> bool {
    *hash == BlockHash::ZERO
}

/// The block tree plus notarization/finalization bookkeeping, as a trait
/// so engines can run on the in-memory [`BlockStore`] or the persistent
/// [`WalStore`] without knowing which.
///
/// Implementations must agree with [`BlockStore`]'s semantics exactly —
/// the in-memory backend is the executable specification, and the WAL
/// determinism tests assert a replayed [`WalStore`] reaches a
/// bit-identical [`ChainStore::snapshot`].
pub trait ChainStore: Send {
    /// Inserts a block, returning `false` if it was already present.
    fn insert(&mut self, hash: BlockHash, block: Block) -> bool;

    /// Fetches a block by hash.
    fn get(&self, hash: &BlockHash) -> Option<&Block>;

    /// True if we hold the block (or it is genesis).
    fn contains(&self, hash: &BlockHash) -> bool;

    /// Hashes of blocks received for `round`, in arrival order.
    fn round_blocks(&self, round: Round) -> &[BlockHash];

    /// Marks a block notarized, keeping the certificate if given.
    fn mark_notarized(&mut self, hash: BlockHash, cert: Option<Notarization>);

    /// True if the block is notarized (genesis always is).
    fn is_notarized(&self, hash: &BlockHash) -> bool;

    /// The retained notarization certificate for a block, if any.
    fn notarization(&self, hash: &BlockHash) -> Option<&Notarization>;

    /// Records the finalized block of a round.
    fn mark_finalized(&mut self, round: Round, hash: BlockHash);

    /// The finalized block of `round`, if decided (genesis for round 0).
    fn finalized(&self, round: Round) -> Option<BlockHash>;

    /// True if this specific block is final.
    fn is_finalized(&self, round: Round, hash: &BlockHash) -> bool;

    /// Highest finalized round ever recorded (0 if only genesis). Stable
    /// under pruning: retention may drop old `finalized` entries but never
    /// lowers this value.
    fn max_finalized_round(&self) -> Round;

    /// Walks the parent chain from `tip` (exclusive of genesis) down to —
    /// but not including — round `stop_after`. Returns blocks in
    /// **ascending round order**, or `None` if an ancestor is missing.
    fn chain_to(&self, tip: &BlockHash, stop_after: Round) -> Option<Vec<(BlockHash, &Block)>>;

    /// Number of blocks held.
    fn len(&self) -> usize;

    /// True if no blocks are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops per-round indexes and blocks strictly below `round` that are
    /// not on the finalized chain (bounded memory for long runs).
    fn prune_below(&mut self, round: Round);

    /// The durable state as a normalized [`ChainSnapshot`]: what a restart
    /// recovers, and what the WAL checkpoints.
    fn snapshot(&self) -> ChainSnapshot;

    /// Rebuilds the store from a snapshot, discarding current contents.
    fn restore(&mut self, snapshot: &ChainSnapshot);

    /// Bytes currently held in the write-ahead log (0 for in-memory
    /// backends). A gauge for the metrics pipeline.
    fn wal_bytes(&self) -> u64 {
        0
    }

    /// Flushes buffered writes to durable media (no-op for in-memory
    /// backends).
    fn sync(&mut self) {}
}
