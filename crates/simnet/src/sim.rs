//! The discrete-event simulation driver.
//!
//! Replaces the paper's AWS testbed (substitution **R1** in `DESIGN.md`):
//! `n` [`Engine`]s, a [`Topology`], a [`FaultPlan`] and a seed go in; a
//! [`RunMetrics`] with the paper's metrics comes out. Everything is
//! deterministic: the event queue is the shared
//! [`banyan_runtime::EventQueue`] (time order, insertion-sequence
//! tie-break), jitter comes from a seeded RNG, and links are FIFO (like
//! the TCP/QUIC channels the paper assumes — Remark 8.3 notes Banyan's
//! restrictions never cost latency when reordering is precluded).
//!
//! Engine actions are routed through [`banyan_runtime::route_actions`] —
//! the same layer the TCP runner uses — so a simulated replica and a
//! socketed replica process identical events identically.
//!
//! # Network model
//!
//! * **Propagation**: per-pair one-way delay from the topology matrix.
//! * **Serialization**: each replica owns an egress queue draining at the
//!   topology's bandwidth; a broadcast of a large block serializes one copy
//!   per receiver, which is what bends throughput/latency curves at large
//!   block sizes exactly as in the paper's Fig. 6a/6b.
//! * **Jitter**: uniform in `[0, jitter]`, seeded.
//! * **FIFO**: arrivals on a link never overtake earlier arrivals.
//!
//! # Request dissemination
//!
//! With [`Simulation::enable_dissemination`], the simulator also routes
//! the mempool layer's traffic: pending requests pushed at one replica
//! are gossiped to every peer as
//! [`banyan_types::message::DisseminationMsg::Forward`] broadcasts —
//! through the *same* bandwidth/propagation/jitter/FIFO model as
//! consensus traffic, so dissemination is charged against the links it
//! would really occupy — and every commit marks its batched request ids
//! committed in the committing replica's pool (the exactly-once dedup
//! rule; see `banyan_mempool`). Engines never see dissemination frames:
//! the simulator applies them to pools directly, preserving the purity
//! contract.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banyan_crypto::VerifyStats;
use banyan_mempool::{
    PushOutcome, SharedMempool, WorkloadBatch, DEFAULT_PEER_CREDIT, DEFAULT_PEER_QUEUE_CAP,
};
use banyan_runtime::driver::{is_stale, route_actions, ActionDispatch, CommitSink};
use banyan_runtime::queue::EventQueue;
use banyan_storage::{CatchUpState, CatchUpStep};
use banyan_types::app::App;
use banyan_types::engine::{Actions, CommitEntry, Engine, Outbound, TimerKind, TimerRequest};
use banyan_types::ids::{ReplicaId, Round};
use banyan_types::message::{DisseminationMsg, Message, SyncMsg};
use banyan_types::time::{Duration, Time};
use banyan_types::ChainSnapshot;

use crate::cohort::CohortWorkload;
use crate::faults::FaultPlan;
use crate::metrics::{ObservedCommit, RunMetrics, SafetyAuditor};
use crate::topology::Topology;
use crate::workload::{ClientWorkload, ClosedLoopWorkload};

/// Virtual CPU cost charged per signature-verification operation.
///
/// The simulator cannot trust wall-clock verification time (it would break
/// bit-reproducibility), so it meters the engines' [`VerifyStats`] counters
/// after every delivery and advances virtual time by a calibrated cost per
/// operation instead. The constants model a production-grade signature
/// scheme (Ed25519-class, as on the paper's AWS testbed) rather than the
/// repo's toy stand-in — the *counts* are exactly the toy scheme's, so the
/// simulated and TCP crypto bills agree on how many checks happened even
/// though they price them differently.
///
/// A batch of `k` signatures costs `per_batch + k × per_batched_sig`
/// versus `k × per_sig` unbatched; with the defaults the asymptotic
/// batching speedup is 2×.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CryptoCost {
    /// Cost of one individually verified signature.
    pub per_sig: Duration,
    /// Fixed setup cost of one combined (batched) check.
    pub per_batch: Duration,
    /// Marginal cost of each signature inside a combined check.
    pub per_batched_sig: Duration,
}

impl Default for CryptoCost {
    fn default() -> Self {
        CryptoCost {
            per_sig: Duration::from_micros(40),
            per_batch: Duration::from_micros(15),
            per_batched_sig: Duration::from_micros(20),
        }
    }
}

impl CryptoCost {
    /// The virtual CPU time for the operations in `delta`.
    fn charge(&self, delta: &VerifyStats) -> Duration {
        let unbatched = delta.sigs_verified - delta.sigs_batched;
        Duration(
            self.per_sig.as_nanos() * unbatched
                + self.per_batch.as_nanos() * delta.verify_batches
                + self.per_batched_sig.as_nanos() * delta.sigs_batched,
        )
    }
}

/// Tunables of the simulation itself (not of the protocol).
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Maximum uniform per-message jitter added to propagation delay.
    pub jitter: Duration,
    /// Print an event trace to stderr (debugging aid).
    pub trace: bool,
    /// Charge virtual CPU time for signature verification (see
    /// [`CryptoCost`]). `None` — the default — charges nothing and leaves
    /// crypto-off runs bit-identical to earlier releases.
    pub crypto_cost: Option<CryptoCost>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            jitter: Duration::from_micros(500),
            trace: false,
            crypto_cost: None,
        }
    }
}

impl SimConfig {
    /// Config with a specific seed and defaults otherwise.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// Enables the crypto cost model (builder style).
    pub fn with_crypto_cost(mut self, cost: CryptoCost) -> Self {
        self.crypto_cost = Some(cost);
        self
    }
}

/// What can happen next in virtual time. Ordering lives entirely in the
/// shared [`EventQueue`]; this payload carries no ordering of its own.
// Deliveries carry whole messages inline; timers are tiny. Events live
// only inside the queue, so the per-entry slack is acceptable.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum EventKind {
    Deliver {
        from: ReplicaId,
        to: ReplicaId,
        msg: Message,
    },
    Timer {
        replica: ReplicaId,
        kind: TimerKind,
        /// Incarnation of the replica that armed this timer; a restart
        /// bumps the replica's generation, so timers armed by a previous
        /// life never fire into the new engine.
        generation: u32,
    },
    /// The client population acts: an open-loop workload submits its next
    /// request; a closed-loop workload resubmits after a think time.
    ClientTick,
    /// A per-request retransmission deadline fires: the workload retries
    /// every due, still-uncommitted request.
    RetryTick,
    /// A scheduled `Fault::Crash`/`Fault::Restart` outage begins: the
    /// engine is dropped (heap state really released; see ISSUE 7's crash
    /// fidelity fix), capturing a snapshot first when a rejoin is planned.
    CrashAt { replica: ReplicaId },
    /// A `Fault::Restart` outage ends: the replica is rebuilt via the
    /// restart builder and begins driver-level catch-up.
    Rejoin { replica: ReplicaId },
    /// A catch-up probe/fetch deadline: re-drive the replica's
    /// `CatchUpState`.
    CatchUpTick { replica: ReplicaId },
}

/// The attached client population, if any. Open loop ticks itself on a
/// fixed interval; closed loop only ticks when a completion (observed via
/// the commit path) schedules a think-time resubmission. Retry ticks are
/// armed by submissions in either mode.
enum Workload {
    Open(ClientWorkload),
    Closed(ClosedLoopWorkload),
    Cohort(CohortWorkload),
}

impl Workload {
    /// Feeds one commit to the population's completion hook (all modes
    /// track completions — the first delivery of an id settles it).
    fn observe_commit(&mut self, entry: &CommitEntry) {
        match self {
            Workload::Open(w) => w.deliver(entry),
            Workload::Closed(w) => w.deliver(entry),
            Workload::Cohort(w) => w.deliver(entry),
        }
    }

    /// Drains pending think-time deadlines into `out` (cleared first); the
    /// populations recycle the buffer instead of allocating per event.
    fn take_pending_think_ticks_into(&mut self, out: &mut Vec<Time>) {
        match self {
            Workload::Open(_) => out.clear(),
            Workload::Closed(w) => w.take_pending_ticks_into(out),
            Workload::Cohort(w) => w.take_pending_ticks_into(out),
        }
    }

    fn take_pending_retry_ticks_into(&mut self, out: &mut Vec<Time>) {
        match self {
            Workload::Open(w) => w.take_pending_retry_ticks_into(out),
            Workload::Closed(w) => w.take_pending_retry_ticks_into(out),
            Workload::Cohort(w) => w.take_pending_retry_ticks_into(out),
        }
    }

    fn handle_retry_tick(&mut self, now: Time) -> u64 {
        match self {
            Workload::Open(w) => w.handle_retry_tick(now),
            Workload::Closed(w) => w.handle_retry_tick(now),
            Workload::Cohort(w) => w.handle_retry_tick(now),
        }
    }

    fn mempools(&self) -> &[SharedMempool] {
        match self {
            Workload::Open(w) => w.mempools(),
            Workload::Closed(w) => w.mempools(),
            Workload::Cohort(w) => w.mempools(),
        }
    }

    fn completed(&self) -> u64 {
        match self {
            Workload::Open(w) => w.completed(),
            Workload::Closed(w) => w.completed(),
            Workload::Cohort(w) => w.completed(),
        }
    }

    fn pending_in_pools(&self) -> u64 {
        match self {
            Workload::Open(w) => w.pending_in_pools(),
            Workload::Closed(w) => w.pending_in_pools(),
            Workload::Cohort(w) => w.pending_in_pools(),
        }
    }

    fn freeze(&mut self) {
        match self {
            Workload::Open(w) => w.freeze(),
            Workload::Closed(w) => w.freeze(),
            Workload::Cohort(w) => w.freeze(),
        }
    }
}

/// Dissemination-layer wiring: the per-replica pools the simulator routes
/// gossip into and marks commits against.
struct DisseminationState {
    /// Forward pending requests to peers (one gossip round per push).
    gossip: bool,
    /// Speculative drain: observe every block crossing the wire and feed
    /// each pool's lease table (see `banyan_mempool`).
    speculative: bool,
    /// Propagation-limited gossip: route pushes down a bounded-fanout
    /// tree through per-peer queues instead of broadcasting every push.
    fanout_tree: bool,
    /// `pools[i]` is replica `i`'s mempool.
    pools: Vec<SharedMempool>,
}

/// Commit side of action routing: every finalization feeds the safety
/// auditor, the replica's [`App`] (if attached), the workload's
/// completion hook (if attached), the dissemination layer's committed-id
/// dedup (if enabled) and the metrics log.
struct SimCommitSink<'a> {
    commits: &'a mut Vec<ObservedCommit>,
    auditor: &'a mut SafetyAuditor,
    apps: &'a mut [Option<Box<dyn App>>],
    /// The client population observes every replica's commits — the
    /// first delivery of a batched request completes it.
    workload: Option<&'a mut Workload>,
    /// With dissemination enabled, each commit marks its batched ids
    /// committed in the committing replica's pool (exactly-once dedup)
    /// and — when the pool is speculative — retires/releases leases.
    dedup_pools: Option<&'a [SharedMempool]>,
}

impl CommitSink for SimCommitSink<'_> {
    fn on_commit(&mut self, replica: ReplicaId, entry: CommitEntry) {
        self.auditor.observe(replica, &entry);
        if let Some(pools) = self.dedup_pools {
            if let Some(batch) = WorkloadBatch::decode(&entry.payload) {
                pools[replica.as_usize()]
                    .lock()
                    .expect("mempool lock")
                    .mark_committed_block(entry.block, entry.round, &batch.requests);
            }
        }
        if let Some(app) = &mut self.apps[replica.as_usize()] {
            app.deliver(&entry);
        }
        if let Some(workload) = self.workload.as_deref_mut() {
            workload.observe_commit(&entry);
        }
        self.commits.push(ObservedCommit { replica, entry });
    }
}

/// Driver side of action routing: timers go back into the global event
/// queue (so timer/delivery interleavings stay totally ordered), outbound
/// messages run through the bandwidth/propagation/jitter/FIFO model.
struct NetDispatch<'a> {
    now: Time,
    queue: &'a mut EventQueue<EventKind>,
    topology: &'a Topology,
    faults: &'a FaultPlan,
    jitter: Duration,
    rng: &'a mut SmallRng,
    egress_free_at: &'a mut [Time],
    link_last_arrival: &'a mut [Vec<Time>],
    messages_sent: &'a mut u64,
    bytes_sent: &'a mut u64,
    messages_dropped: &'a mut u64,
    gossip_bytes: &'a mut u64,
    /// The acting replica's current incarnation, stamped onto armed
    /// timers (see `EventKind::Timer::generation`).
    generation: u32,
}

impl ActionDispatch for NetDispatch<'_> {
    fn arm(&mut self, replica: ReplicaId, request: TimerRequest) {
        // Timers always fire at or after `now`.
        let at = request.at.max(self.now);
        self.queue.push(
            at,
            EventKind::Timer {
                replica,
                kind: request.kind,
                generation: self.generation,
            },
        );
    }

    fn transmit(&mut self, from: ReplicaId, out: Outbound) {
        match out {
            Outbound::Broadcast(msg) => self.transmit_broadcast(from, msg),
            Outbound::Send(to, msg) => {
                let bytes = msg.wire_len();
                let departure = self.reserve_egress(from, bytes);
                self.schedule_delivery(from, to, msg, departure);
            }
        }
    }
}

impl NetDispatch<'_> {
    /// Serializes one copy of the message per receiver on the sender's
    /// uplink, in round-robin receiver order starting after the sender.
    fn transmit_broadcast(&mut self, from: ReplicaId, msg: Message) {
        let n = self.topology.n();
        let bytes = msg.wire_len();
        for off in 1..n {
            let to = ReplicaId(((from.as_usize() + off) % n) as u16);
            let departure = self.reserve_egress(from, bytes);
            self.schedule_delivery(from, to, msg.clone(), departure);
        }
    }

    /// Occupies the sender's uplink for one copy of `bytes`, returning the
    /// departure (serialization-complete) time.
    fn reserve_egress(&mut self, from: ReplicaId, bytes: u64) -> Time {
        let tx = self.topology.transmit_time(bytes);
        let start = self.egress_free_at[from.as_usize()].max(self.now);
        let departure = start + tx;
        self.egress_free_at[from.as_usize()] = departure;
        departure
    }

    fn schedule_delivery(&mut self, from: ReplicaId, to: ReplicaId, msg: Message, departure: Time) {
        if self.faults.is_crashed(from, self.now) {
            return;
        }
        *self.messages_sent += 1;
        *self.bytes_sent += msg.wire_len();
        if matches!(msg, Message::Dissemination(_)) {
            *self.gossip_bytes += msg.wire_len();
        }

        if self.faults.is_cut(from, to, self.now) {
            *self.messages_dropped += 1;
            return;
        }

        let base = self.topology.delay(from.as_usize(), to.as_usize());
        let extra = self.faults.extra_delay(from, to, self.now);
        let jitter = if self.jitter.as_nanos() == 0 {
            Duration::ZERO
        } else {
            Duration(self.rng.gen_range(0..=self.jitter.as_nanos()))
        };
        let mut arrival = departure + base + extra + jitter;

        // FIFO: never overtake an earlier message on the same link.
        let last = &mut self.link_last_arrival[from.as_usize()][to.as_usize()];
        if arrival <= *last {
            arrival = *last + Duration(1);
        }
        *last = arrival;

        self.queue
            .push(arrival, EventKind::Deliver { from, to, msg });
    }
}

/// Rebuilds a restarted replica's engine from its durable state: the
/// snapshot captured at the crash instant (pass it to `Engine::restore`),
/// or — for WAL-backed replicas — ignore the snapshot and reopen the log.
pub type RestartBuilder = Box<dyn Fn(ReplicaId, &ChainSnapshot) -> Box<dyn Engine>>;

/// Per-step timeout for driver-level catch-up (probe and fetch windows).
const CATCHUP_TIMEOUT: Duration = Duration(500_000_000); // 500 ms

/// Tombstone standing in for a dropped engine during an outage: a crashed
/// replica's heap state is really gone (`Fault::Crash` fidelity), so any
/// event that slips through the fault checks hits a no-op.
struct CrashedEngine {
    id: ReplicaId,
}

impl Engine for CrashedEngine {
    fn id(&self) -> ReplicaId {
        self.id
    }
    fn protocol_name(&self) -> &'static str {
        "crashed"
    }
    fn on_init(&mut self, _now: Time) -> Actions {
        Actions::none()
    }
    fn on_message(&mut self, _from: ReplicaId, _msg: Message, _now: Time) -> Actions {
        Actions::none()
    }
    fn on_timer(&mut self, _kind: TimerKind, _now: Time) -> Actions {
        Actions::none()
    }
    fn current_round(&self) -> Round {
        Round::GENESIS
    }
}

/// The simulator. See the module docs.
pub struct Simulation {
    topology: Topology,
    config: SimConfig,
    engines: Vec<Box<dyn Engine>>,
    faults: FaultPlan,
    now: Time,
    queue: EventQueue<EventKind>,
    /// When each replica's uplink becomes free.
    egress_free_at: Vec<Time>,
    /// Last arrival time per directed link, for FIFO enforcement.
    link_last_arrival: Vec<Vec<Time>>,
    rng: SmallRng,
    metrics: RunMetrics,
    auditor: SafetyAuditor,
    /// Per-replica commit delivery targets (None = metrics only).
    apps: Vec<Option<Box<dyn App>>>,
    /// Client population (open- or closed-loop), if attached.
    workload: Option<Workload>,
    /// Request-dissemination wiring (gossip routing + commit dedup), if
    /// enabled.
    dissemination: Option<DisseminationState>,
    /// Per-replica incarnation counter, bumped on crash and on rejoin so
    /// stale-life timers are dropped.
    generations: Vec<u32>,
    /// Rebuilds engines for `Fault::Restart` rejoins; without one, a
    /// restarted replica simply stays down.
    restart_builder: Option<RestartBuilder>,
    /// Snapshot captured at the crash instant of a restart-scheduled
    /// replica (the durable state a non-WAL engine recovers from).
    crash_snapshots: Vec<Option<ChainSnapshot>>,
    /// Driver-level catch-up state per recovering replica.
    catchup: Vec<Option<CatchUpState>>,
    /// When each restarted replica rejoined (recovery-latency metric).
    rejoined_at: Vec<Option<Time>>,
    /// Per-replica verify-counter snapshot at the last metering point
    /// (reset when an engine is dropped or rebuilt).
    last_verify: Vec<VerifyStats>,
    /// Verify counters of engines that have since been dropped (crashes),
    /// folded into the run totals.
    retired_verify: VerifyStats,
    /// Total virtual CPU time charged by the crypto cost model.
    charged_crypto: Duration,
    /// Reusable drain buffers for workload think/retry deadlines (the
    /// populations swap into these instead of allocating per event).
    think_scratch: Vec<Time>,
    retry_scratch: Vec<Time>,
    initialized: bool,
}

impl Simulation {
    /// Builds a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `engines.len() != topology.n()` or if an engine's id does
    /// not match its slot.
    pub fn new(
        topology: Topology,
        engines: Vec<Box<dyn Engine>>,
        faults: FaultPlan,
        config: SimConfig,
    ) -> Self {
        assert_eq!(engines.len(), topology.n(), "one engine per topology slot");
        for (i, e) in engines.iter().enumerate() {
            assert_eq!(
                e.id(),
                ReplicaId(i as u16),
                "engine {i} has wrong id {:?}",
                e.id()
            );
        }
        let n = topology.n();
        let rng = SmallRng::seed_from_u64(config.seed);
        Simulation {
            topology,
            config,
            engines,
            faults,
            now: Time::ZERO,
            queue: EventQueue::new(),
            egress_free_at: vec![Time::ZERO; n],
            link_last_arrival: vec![vec![Time::ZERO; n]; n],
            rng,
            metrics: RunMetrics::default(),
            auditor: SafetyAuditor::new(),
            apps: (0..n).map(|_| None).collect(),
            workload: None,
            dissemination: None,
            generations: vec![0; n],
            restart_builder: None,
            crash_snapshots: (0..n).map(|_| None).collect(),
            catchup: (0..n).map(|_| None).collect(),
            rejoined_at: vec![None; n],
            last_verify: vec![VerifyStats::default(); n],
            retired_verify: VerifyStats::default(),
            charged_crypto: Duration::ZERO,
            think_scratch: Vec::new(),
            retry_scratch: Vec::new(),
            initialized: false,
        }
    }

    /// Installs the engine rebuilder used when a [`crate::Fault::Restart`]
    /// rejoins: called with the replica id and the snapshot captured at
    /// its crash instant. A WAL-backed build ignores the snapshot and
    /// reopens its log; an in-memory build calls `Engine::restore` with
    /// it. Without a builder, restart-scheduled replicas stay down.
    pub fn set_restart_builder(&mut self, builder: RestartBuilder) {
        self.restart_builder = Some(builder);
    }

    /// Attaches an open-loop client workload: its generator is driven from
    /// the simulation's own event queue (one tick per request), so request
    /// arrivals interleave deterministically with deliveries and timers.
    /// The first request is submitted one inter-arrival interval in.
    ///
    /// # Panics
    ///
    /// Panics if a workload is already attached.
    pub fn attach_workload(&mut self, workload: ClientWorkload) {
        assert!(self.workload.is_none(), "a workload is already attached");
        let first = self.now + workload.interval();
        self.workload = Some(Workload::Open(workload));
        self.queue.push(first, EventKind::ClientTick);
    }

    /// Attaches a closed-loop client population: its full initial window
    /// (`clients × window` requests) is submitted immediately, and from
    /// then on completions — observed through the commit delivery path —
    /// schedule think-time `ClientTick`s that resubmit one request each.
    ///
    /// # Panics
    ///
    /// Panics if a workload is already attached.
    pub fn attach_closed_loop(&mut self, mut workload: ClosedLoopWorkload) {
        assert!(self.workload.is_none(), "a workload is already attached");
        self.metrics.requests_submitted += workload.prime(self.now);
        self.workload = Some(Workload::Closed(workload));
    }

    /// The attached closed-loop population, if any (for post-run window
    /// and completion assertions).
    pub fn closed_loop(&self) -> Option<&ClosedLoopWorkload> {
        match &self.workload {
            Some(Workload::Closed(w)) => Some(w),
            _ => None,
        }
    }

    /// Attaches a cohort-aggregated client population (see
    /// [`crate::cohort`]): up to the admission cap of its initial windows
    /// is submitted immediately, and from then on completions and
    /// token-bucket deadlines schedule `ClientTick`s that admit deferred
    /// demand. Memory and per-event work stay `O(cohorts)`, so millions
    /// of modeled clients cost the same as dozens.
    ///
    /// # Panics
    ///
    /// Panics if a workload is already attached.
    pub fn attach_cohorts(&mut self, mut workload: CohortWorkload) {
        assert!(self.workload.is_none(), "a workload is already attached");
        self.metrics.requests_submitted += workload.prime(self.now);
        self.workload = Some(Workload::Cohort(workload));
    }

    /// The attached cohort population, if any (for post-run per-cohort
    /// latency/throughput assertions).
    pub fn cohort_workload(&self) -> Option<&CohortWorkload> {
        match &self.workload {
            Some(Workload::Cohort(w)) => Some(w),
            _ => None,
        }
    }

    /// Enables the request-dissemination layer for the attached
    /// workload's pools: commits mark their batched ids committed in the
    /// committing replica's pool (exactly-once dedup), and — with
    /// `gossip` — pending requests pushed at one replica are forwarded to
    /// every peer through the network model, so a request reaches every
    /// potential leader within one gossip round.
    ///
    /// # Panics
    ///
    /// Panics if no workload is attached or its pool count does not match
    /// the topology.
    pub fn enable_dissemination(&mut self, gossip: bool) {
        let pools: Vec<SharedMempool> = self
            .workload
            .as_ref()
            .expect("attach a workload before enabling dissemination")
            .mempools()
            .to_vec();
        assert_eq!(
            pools.len(),
            self.topology.n(),
            "dissemination needs one pool per replica"
        );
        if gossip {
            for pool in &pools {
                pool.lock().expect("mempool lock").set_gossip(true);
            }
        }
        self.dissemination = Some(DisseminationState {
            gossip,
            speculative: false,
            fanout_tree: false,
            pools,
        });
    }

    /// Switches gossip from all-peers broadcast to **propagation-limited
    /// gossip**: each replica forwards pushes only to its `fanout` tree
    /// peers (ring successor + lowest-delay picks, see
    /// [`Topology::fanout_peers`]) through bounded per-peer queues with
    /// credit-based backpressure — a slow peer sheds from its own queue
    /// without stalling the others. First-time acceptors relay down their
    /// own tree edges as compact announcements (id-only records), so every
    /// request still reaches every replica while per-request gossip bytes
    /// drop from `O(n · size)` to roughly `O(n)` announce records plus
    /// `fanout` full copies.
    ///
    /// # Panics
    ///
    /// Panics if [`enable_dissemination`](Self::enable_dissemination) was
    /// not called with `gossip = true` first.
    pub fn enable_fanout_tree(&mut self, fanout: usize) {
        let d = self
            .dissemination
            .as_mut()
            .expect("enable dissemination before the fanout tree");
        assert!(d.gossip, "the fanout tree replaces gossip broadcast");
        d.fanout_tree = true;
        for (i, pool) in d.pools.iter().enumerate() {
            let peers = self.topology.fanout_peers(i, fanout, self.config.seed);
            if peers.is_empty() {
                continue;
            }
            pool.lock().expect("mempool lock").set_peer_queues(
                &peers,
                DEFAULT_PEER_QUEUE_CAP,
                DEFAULT_PEER_CREDIT,
            );
        }
    }

    /// Enables the **speculative drain** on every wired pool: the
    /// simulator observes each block crossing the wire (own proposals on
    /// the way out, peers' and sync responses on the way in) and feeds
    /// the pool's lease table, so an inclusion-aware `MempoolSource`
    /// skips requests a live ancestor already carries and abandoned
    /// blocks release their requests back into the queue. `payload_chunk`
    /// must match the cluster's `ProtocolConfig::payload_chunk` so
    /// observed blocks hash to the engine's block ids.
    ///
    /// # Panics
    ///
    /// Panics if [`enable_dissemination`](Self::enable_dissemination) was
    /// not called first (speculation needs the commit→pool feed).
    pub fn enable_speculation(&mut self, payload_chunk: usize) {
        let d = self
            .dissemination
            .as_mut()
            .expect("enable dissemination before speculation");
        d.speculative = true;
        for pool in &d.pools {
            pool.lock()
                .expect("mempool lock")
                .set_speculation(Some(payload_chunk));
        }
    }

    /// Freezes the attached workload: no new submissions or replacement
    /// resubmissions, while retransmissions of already-submitted requests
    /// keep firing. Harnesses call this to *drain* the system after the
    /// measured phase — with retry and/or gossip enabled, every
    /// still-uncommitted request then works its way to a commit instead
    /// of being stranded, and `RunMetrics::requests_lost` ends at zero.
    pub fn freeze_workload(&mut self) {
        if let Some(w) = &mut self.workload {
            w.freeze();
        }
    }

    /// Attaches `replica`'s [`App`]: every block that replica finalizes is
    /// delivered to it (in chain order), alongside the metrics log.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn attach_app(&mut self, replica: ReplicaId, app: Box<dyn App>) {
        self.apps[replica.as_usize()] = Some(app);
    }

    /// Removes and returns `replica`'s attached [`App`] (for post-run
    /// assertions in tests and examples).
    pub fn take_app(&mut self, replica: ReplicaId) -> Option<Box<dyn App>> {
        self.apps[replica.as_usize()].take()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The safety auditor (updated live during the run).
    pub fn auditor(&self) -> &SafetyAuditor {
        &self.auditor
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Immutable access to an engine (for assertions in tests).
    pub fn engine(&self, replica: ReplicaId) -> &dyn Engine {
        self.engines[replica.as_usize()].as_ref()
    }

    /// Runs until virtual time `end` (or until no events remain).
    /// Returns the metrics snapshot.
    pub fn run_until(&mut self, end: Time) -> &RunMetrics {
        if !self.initialized {
            self.initialized = true;
            // Outage schedule: engine drops and rejoins are explicit
            // events so heap state is released at the crash instant and
            // recovery starts exactly at the rejoin instant.
            for fault in self.faults.faults().to_vec() {
                match fault {
                    crate::Fault::Crash { replica, at } => {
                        self.queue.push(at, EventKind::CrashAt { replica });
                    }
                    crate::Fault::Restart {
                        replica,
                        at,
                        rejoin_at,
                    } => {
                        self.queue.push(at, EventKind::CrashAt { replica });
                        self.queue.push(rejoin_at, EventKind::Rejoin { replica });
                    }
                    _ => {}
                }
            }
            for i in 0..self.engines.len() {
                let id = ReplicaId(i as u16);
                if self.faults.is_crashed(id, self.now) {
                    continue;
                }
                let actions = self.engines[i].on_init(self.now);
                self.process_actions(id, actions);
            }
        }
        // Requests pushed before this call (priming, earlier segments)
        // may have left gossip or retry work pending.
        self.after_event();

        while self.queue.next_at().is_some_and(|at| at <= end) {
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            match event {
                EventKind::Deliver { from, to, msg } => {
                    if self.faults.is_crashed(to, self.now) {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                    if self.config.trace {
                        eprintln!("[{}] {} -> {}: {}", self.now, from, to, msg.label());
                    }
                    // Dissemination frames are driver-level traffic: they
                    // feed the receiver's mempool, never an engine.
                    if let Message::Dissemination(d) = msg {
                        self.handle_dissemination(from, to, d);
                    } else if matches!(msg, Message::Sync(SyncMsg::FrontierProbe)) {
                        // Driver traffic: answer from the engine's commit
                        // frontier without delivering (engines stay pure,
                        // and the chained engine's own answer path would
                        // double-reply).
                        let finalized = self.engines[to.as_usize()].finalized_round();
                        self.driver_send(
                            to,
                            Outbound::Send(
                                from,
                                Message::Sync(SyncMsg::FrontierInfo { finalized }),
                            ),
                        );
                    } else if let Message::Sync(SyncMsg::FrontierInfo { finalized }) = msg {
                        // Driver traffic: feed the recovering replica's
                        // catch-up machine.
                        if let Some(cu) = &mut self.catchup[to.as_usize()] {
                            cu.on_frontier(finalized);
                        }
                        self.drive_catchup(to);
                    } else {
                        // Speculative drain: the driver — not the engine —
                        // observes every arriving block and feeds the
                        // receiver's lease table.
                        if let Some(d) = &self.dissemination {
                            if d.speculative {
                                let mut pool = d.pools[to.as_usize()].lock().expect("mempool lock");
                                if let Some(block) = msg.proposal_block() {
                                    pool.observe_proposal(block);
                                }
                                for block in msg.sync_batch_blocks() {
                                    pool.observe_proposal(block);
                                }
                            }
                        }
                        let was_batch = matches!(msg, Message::Sync(SyncMsg::ResponseBatch { .. }));
                        let actions = self.engines[to.as_usize()].on_message(from, msg, self.now);
                        // Crypto cost model: the verification work this
                        // delivery triggered occupies the replica's CPU, so
                        // everything it *produces* (outbound messages,
                        // timers) departs later by the charged time. The
                        // engine's own view of `now` stays the arrival
                        // instant (virtual CPU time below the event
                        // granularity is not observable to the protocol).
                        let crypto_cost = self.meter_crypto(to);
                        self.now += crypto_cost;
                        self.process_actions(to, actions);
                        if was_batch && self.catchup[to.as_usize()].is_some() {
                            let frontier = self.engines[to.as_usize()].finalized_round();
                            if let Some(cu) = &mut self.catchup[to.as_usize()] {
                                cu.on_progress(frontier);
                            }
                            self.drive_catchup(to);
                        }
                    }
                }
                EventKind::Timer {
                    replica,
                    kind,
                    generation,
                } => {
                    if self.faults.is_crashed(replica, self.now) {
                        continue;
                    }
                    // Timers armed by a previous incarnation die with it.
                    if generation != self.generations[replica.as_usize()] {
                        continue;
                    }
                    // Shared stale-timer rule: rounds the engine has left
                    // are dropped without delivery (engines would no-op).
                    if is_stale(&kind, self.engines[replica.as_usize()].current_round()) {
                        continue;
                    }
                    if self.config.trace {
                        eprintln!("[{}] {} timer {:?}", self.now, replica, kind);
                    }
                    let actions = self.engines[replica.as_usize()].on_timer(kind, self.now);
                    self.process_actions(replica, actions);
                }
                EventKind::ClientTick => match self
                    .workload
                    .as_mut()
                    .expect("client tick without a workload")
                {
                    Workload::Open(workload) => {
                        if !workload.frozen() {
                            let target = workload.submit_next(self.now);
                            self.metrics.requests_submitted += 1;
                            if self.config.trace {
                                eprintln!("[{}] client submit -> {}", self.now, target);
                            }
                            let next = self.now + workload.interval();
                            self.queue.push(next, EventKind::ClientTick);
                        }
                    }
                    Workload::Closed(workload) => {
                        if let Some(target) = workload.resubmit_next(self.now) {
                            self.metrics.requests_submitted += 1;
                            if self.config.trace {
                                eprintln!("[{}] client resubmit -> {}", self.now, target);
                            }
                        }
                    }
                    Workload::Cohort(workload) => {
                        let admitted = workload.handle_tick(self.now);
                        self.metrics.requests_submitted += admitted;
                        if self.config.trace && admitted > 0 {
                            eprintln!("[{}] cohorts admitted {admitted} request(s)", self.now);
                        }
                    }
                },
                EventKind::RetryTick => {
                    let retried = self
                        .workload
                        .as_mut()
                        .expect("retry tick without a workload")
                        .handle_retry_tick(self.now);
                    self.metrics.requests_retried += retried;
                    if self.config.trace && retried > 0 {
                        eprintln!("[{}] client retried {retried} request(s)", self.now);
                    }
                }
                EventKind::CrashAt { replica } => self.crash_replica(replica),
                EventKind::Rejoin { replica } => self.rejoin_replica(replica),
                EventKind::CatchUpTick { replica } => self.drive_catchup(replica),
            }
            self.after_event();
        }

        self.now = end;
        self.metrics.end_time = end;
        if let Some(w) = &self.workload {
            self.metrics.requests_completed = w.completed();
            self.metrics.requests_pending = w.pending_in_pools();
        }
        self.metrics.wal_bytes = self.engines.iter().map(|e| e.wal_bytes()).sum();
        if let Some(d) = &self.dissemination {
            // Forward loss accounting: shared-outbox drops plus per-peer
            // backpressure sheds, across every pool.
            self.metrics.forwards_dropped = d
                .pools
                .iter()
                .map(|p| {
                    let pool = p.lock().expect("mempool lock");
                    pool.forward_dropped() + pool.peer_sheds()
                })
                .sum();
        }
        // Verify-plane totals: live engines plus engines retired by
        // crashes. `verify_cpu_ms` is the *charged* virtual time — the
        // wall-clock `verify_cpu_ns` the backends also track is
        // non-deterministic and deliberately ignored here.
        let mut verify = self.retired_verify;
        for e in &self.engines {
            verify.merge(&e.verify_stats());
        }
        self.metrics.sigs_verified = verify.sigs_verified;
        self.metrics.verify_batches = verify.verify_batches;
        self.metrics.cert_cache_hits = verify.cert_cache_hits;
        self.metrics.verify_cpu_ms = self.charged_crypto.as_nanos() / 1_000_000;
        &self.metrics
    }

    /// Consumes the simulation, returning final metrics and auditor.
    pub fn into_results(self) -> (RunMetrics, SafetyAuditor) {
        (self.metrics, self.auditor)
    }

    /// Applies one dissemination frame to the receiving replica's pool.
    /// Forwarded requests are accepted (subject to the duplicate and
    /// committed-id rules). In broadcast mode they are never re-forwarded
    /// — gossip is one round. In fanout-tree mode, each *first-time*
    /// accept is relayed down the receiver's own tree edges (minus the
    /// sender) as a compact announcement; duplicates are never relayed,
    /// so the cascade terminates once every replica has seen the request.
    fn handle_dissemination(&mut self, from: ReplicaId, to: ReplicaId, msg: DisseminationMsg) {
        let Some(d) = &self.dissemination else {
            // No pools wired (e.g. a frame arriving after reconfiguration):
            // dropped like any foreign traffic.
            return;
        };
        let relay = d.fanout_tree;
        let mut pool = d.pools[to.as_usize()].lock().expect("mempool lock");
        let (DisseminationMsg::Forward { requests } | DisseminationMsg::Announce { requests }) =
            msg;
        for req in requests {
            let outcome = pool.accept_forwarded(req);
            if relay
                && matches!(
                    outcome,
                    PushOutcome::Accepted | PushOutcome::AcceptedEvicting(_)
                )
            {
                pool.queue_relay(req, Some(from.as_usize()));
            }
        }
    }

    /// Post-event bookkeeping: flush gossip outboxes into the network
    /// model (all-peers `Forward` broadcasts, or per-peer tree sends in
    /// fanout mode) and turn the workload's freshly armed think/retry
    /// deadlines into queue events. Called once per processed event (and
    /// at segment start), so pushes and completions from *this* event are
    /// scheduled before the next event pops.
    fn after_event(&mut self) {
        let tree = self
            .dissemination
            .as_ref()
            .is_some_and(|d| d.gossip && d.fanout_tree);
        if tree {
            self.flush_fanout_queues();
        } else {
            // Gossip: collect each replica's newly pushed requests, then
            // broadcast one Forward per replica through the network model.
            let outboxes: Vec<(ReplicaId, Vec<banyan_mempool::Request>)> = match &self.dissemination
            {
                Some(d) if d.gossip => d
                    .pools
                    .iter()
                    .enumerate()
                    .filter_map(|(i, pool)| {
                        let requests = pool.lock().expect("mempool lock").take_outbox();
                        (!requests.is_empty()).then_some((ReplicaId(i as u16), requests))
                    })
                    .collect(),
                _ => Vec::new(),
            };
            for (from, requests) in outboxes {
                self.broadcast_forward(from, requests);
            }
        }
        // Workload deadlines become queue events, never before `now`. The
        // scratch buffers are recycled across events (no per-event Vec
        // churn on the hot path).
        let Simulation {
            workload,
            queue,
            now,
            think_scratch,
            retry_scratch,
            ..
        } = self;
        if let Some(w) = workload {
            w.take_pending_think_ticks_into(think_scratch);
            for &at in think_scratch.iter() {
                queue.push(at.max(*now), EventKind::ClientTick);
            }
            w.take_pending_retry_ticks_into(retry_scratch);
            for &at in retry_scratch.iter() {
                queue.push(at.max(*now), EventKind::RetryTick);
            }
        }
    }

    /// Fanout-tree flush: drain every replica's per-peer queues (as far
    /// as each peer's credit allows), sending first-hop entries as full
    /// `Forward` bodies and relay entries as compact `Announce` records.
    /// The simulated transport confirms synchronously, so consumed credit
    /// is granted straight back; the credit machinery still bounds how
    /// much any single flush may put in flight behind a shed-prone queue.
    fn flush_fanout_queues(&mut self) {
        let Some(d) = &self.dissemination else {
            return;
        };
        let mut sends: Vec<(ReplicaId, ReplicaId, Message)> = Vec::new();
        for (i, pool) in d.pools.iter().enumerate() {
            let from = ReplicaId(i as u16);
            let mut pool = pool.lock().expect("mempool lock");
            for peer in pool.peer_ids() {
                let entries = pool.take_peer_outbox(peer);
                if entries.is_empty() {
                    continue;
                }
                pool.grant_peer_credit(peer, entries.len() as u32);
                let to = ReplicaId(peer as u16);
                let forwards: Vec<banyan_mempool::Request> = entries
                    .iter()
                    .filter(|(_, relay)| !relay)
                    .map(|(req, _)| *req)
                    .collect();
                let announces: Vec<banyan_mempool::Request> = entries
                    .iter()
                    .filter(|(_, relay)| *relay)
                    .map(|(req, _)| *req)
                    .collect();
                if !forwards.is_empty() {
                    sends.push((
                        from,
                        to,
                        Message::Dissemination(DisseminationMsg::Forward { requests: forwards }),
                    ));
                }
                if !announces.is_empty() {
                    sends.push((
                        from,
                        to,
                        Message::Dissemination(DisseminationMsg::Announce {
                            requests: announces,
                        }),
                    ));
                }
            }
        }
        for (from, to, msg) in sends {
            self.driver_send(from, Outbound::Send(to, msg));
        }
    }

    /// Broadcasts one `Forward` frame from `from` through the ordinary
    /// egress/propagation/jitter/FIFO model (dissemination shares links
    /// with consensus traffic and is charged the same way).
    fn broadcast_forward(&mut self, from: ReplicaId, requests: Vec<banyan_mempool::Request>) {
        self.driver_send(
            from,
            Outbound::Broadcast(Message::Dissemination(DisseminationMsg::Forward {
                requests,
            })),
        );
    }

    /// Transmits driver-originated traffic (dissemination gossip,
    /// catch-up sync) from `from` through the same network model engine
    /// traffic uses — driver frames are charged against real links.
    fn driver_send(&mut self, from: ReplicaId, out: Outbound) {
        let Simulation {
            topology,
            config,
            faults,
            now,
            queue,
            egress_free_at,
            link_last_arrival,
            rng,
            metrics,
            generations,
            ..
        } = self;
        let RunMetrics {
            messages_sent,
            bytes_sent,
            messages_dropped,
            gossip_bytes,
            ..
        } = metrics;
        let mut dispatch = NetDispatch {
            now: *now,
            queue,
            topology,
            faults,
            jitter: config.jitter,
            rng,
            egress_free_at,
            link_last_arrival,
            messages_sent,
            bytes_sent,
            messages_dropped,
            gossip_bytes,
            generation: generations[from.as_usize()],
        };
        dispatch.transmit(from, out);
    }

    /// Meters `replica`'s verify counters since the last metering point
    /// and returns the virtual CPU time to charge (zero when the cost
    /// model is off — the snapshot is still advanced so enabling the
    /// model never double-charges old work).
    fn meter_crypto(&mut self, replica: ReplicaId) -> Duration {
        let i = replica.as_usize();
        let cur = self.engines[i].verify_stats();
        let delta = cur.delta_since(&self.last_verify[i]);
        self.last_verify[i] = cur;
        let Some(cost) = &self.config.crypto_cost else {
            return Duration::ZERO;
        };
        let charge = cost.charge(&delta);
        self.charged_crypto = self.charged_crypto + charge;
        charge
    }

    /// Begins a scheduled outage: captures a recovery snapshot when a
    /// rejoin is planned, then **drops the engine** — crashed replicas
    /// hold no heap state, exactly like a killed process (the only way
    /// back is the restart builder's durable state).
    fn crash_replica(&mut self, replica: ReplicaId) {
        let i = replica.as_usize();
        if self.engines[i].protocol_name() == "crashed" {
            return; // already down (duplicate schedule entry)
        }
        let rejoins = self
            .faults
            .restarts()
            .iter()
            .any(|(r, at, _)| *r == replica && *at <= self.now);
        if rejoins {
            self.crash_snapshots[i] = Some(self.engines[i].snapshot());
        }
        if self.config.trace {
            eprintln!("[{}] {} crashes (engine dropped)", self.now, replica);
        }
        // Fold the dying engine's verify counters into the run totals and
        // reset the metering snapshot for the (zeroed) replacement.
        self.retired_verify.merge(&self.engines[i].verify_stats());
        self.last_verify[i] = VerifyStats::default();
        self.engines[i] = Box::new(CrashedEngine { id: replica });
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.catchup[i] = None;
    }

    /// Ends a scheduled outage: rebuilds the engine from durable state
    /// via the restart builder, re-initializes it, and starts driver-level
    /// catch-up toward the live commit frontier.
    fn rejoin_replica(&mut self, replica: ReplicaId) {
        let i = replica.as_usize();
        let snapshot = self.crash_snapshots[i].take().unwrap_or_default();
        let Some(builder) = &self.restart_builder else {
            return; // no rebuild path: the replica stays down
        };
        let engine = builder(replica, &snapshot);
        assert_eq!(engine.id(), replica, "restart builder rebuilt wrong id");
        self.engines[i] = engine;
        self.last_verify[i] = self.engines[i].verify_stats();
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.rejoined_at[i] = Some(self.now);
        if self.config.trace {
            eprintln!(
                "[{}] {} rejoins at frontier {}",
                self.now,
                replica,
                self.engines[i].finalized_round()
            );
        }
        let actions = self.engines[i].on_init(self.now);
        self.process_actions(replica, actions);
        self.catchup[i] = Some(CatchUpState::new(
            self.engines[i].finalized_round(),
            self.now,
            CATCHUP_TIMEOUT,
        ));
        self.drive_catchup(replica);
    }

    /// Runs a recovering replica's catch-up machine until it waits or
    /// finishes, turning its steps into driver-level sync traffic.
    fn drive_catchup(&mut self, replica: ReplicaId) {
        let i = replica.as_usize();
        let Some(mut cu) = self.catchup[i].take() else {
            return;
        };
        loop {
            match cu.step(self.now) {
                CatchUpStep::Probe => {
                    self.metrics.sync_requests += 1;
                    self.driver_send(
                        replica,
                        Outbound::Broadcast(Message::Sync(SyncMsg::FrontierProbe)),
                    );
                }
                CatchUpStep::Fetch {
                    from_round,
                    to_round,
                } => {
                    self.metrics.sync_requests += 1;
                    let Some(peer) = self.pick_sync_peer(replica) else {
                        continue; // nobody alive to ask; window will lapse
                    };
                    self.driver_send(
                        replica,
                        Outbound::Send(
                            peer,
                            Message::Sync(SyncMsg::RequestRange {
                                from_round,
                                to_round,
                            }),
                        ),
                    );
                }
                CatchUpStep::Wait => {
                    self.queue.push(
                        self.now + CATCHUP_TIMEOUT,
                        EventKind::CatchUpTick { replica },
                    );
                    self.catchup[i] = Some(cu);
                    return;
                }
                CatchUpStep::Done => {
                    if let Some(rejoined) = self.rejoined_at[i] {
                        self.metrics.restart_recovery_ms +=
                            self.now.since(rejoined).as_nanos() / 1_000_000;
                    }
                    if self.config.trace {
                        eprintln!(
                            "[{}] {} catch-up done at frontier {}",
                            self.now,
                            replica,
                            self.engines[i].finalized_round()
                        );
                    }
                    return;
                }
            }
        }
    }

    /// The peer a recovering replica fetches ranges from: the nearest
    /// live replica by id order after itself (deterministic).
    fn pick_sync_peer(&self, replica: ReplicaId) -> Option<ReplicaId> {
        let n = self.topology.n();
        (1..n)
            .map(|off| ReplicaId(((replica.as_usize() + off) % n) as u16))
            .find(|peer| !self.faults.is_crashed(*peer, self.now))
    }

    /// Routes one engine's actions through the shared driver layer.
    fn process_actions(&mut self, replica: ReplicaId, actions: Actions) {
        // Speculative drain: observe the replica's own outbound blocks
        // (proposals, relays, sync responses) into its lease table before
        // they hit the wire — this is what lets an abandoned own proposal
        // release its drained requests back into the pool.
        if let Some(d) = &self.dissemination {
            if d.speculative {
                let mut pool = d.pools[replica.as_usize()].lock().expect("mempool lock");
                for out in &actions.outbound {
                    let msg = match out {
                        Outbound::Broadcast(msg) => msg,
                        Outbound::Send(_, msg) => msg,
                    };
                    if let Some(block) = msg.proposal_block() {
                        pool.observe_proposal(block);
                    }
                }
            }
        }
        // Catch-up serving metric: blocks shipped in ResponseBatch
        // replies, counted at the server.
        for out in &actions.outbound {
            let msg = match out {
                Outbound::Broadcast(msg) => msg,
                Outbound::Send(_, msg) => msg,
            };
            self.metrics.sync_blocks_served += msg.sync_batch_blocks().len() as u64;
        }
        let Simulation {
            topology,
            config,
            faults,
            now,
            queue,
            egress_free_at,
            link_last_arrival,
            rng,
            metrics,
            auditor,
            apps,
            workload,
            dissemination,
            generations,
            ..
        } = self;
        let RunMetrics {
            commits,
            messages_sent,
            bytes_sent,
            messages_dropped,
            gossip_bytes,
            ..
        } = metrics;
        let mut sink = SimCommitSink {
            commits,
            auditor,
            apps,
            workload: workload.as_mut(),
            dedup_pools: dissemination.as_ref().map(|d| d.pools.as_slice()),
        };
        let mut dispatch = NetDispatch {
            now: *now,
            queue,
            topology,
            faults,
            jitter: config.jitter,
            rng,
            egress_free_at,
            link_last_arrival,
            messages_sent,
            bytes_sent,
            messages_dropped,
            gossip_bytes,
            generation: generations[replica.as_usize()],
        };
        route_actions(replica, actions, &mut sink, &mut dispatch);
        // Think/retry deadlines recorded during routing are turned into
        // queue events by `after_event` (the queue is borrowed here).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::engine::CommitEntry;
    use banyan_types::ids::{BlockHash, Round};
    use banyan_types::message::SyncMsg;

    /// A toy engine: broadcasts one ping at init, counts what it hears,
    /// commits a fake block when it has heard from everyone else.
    struct PingEngine {
        id: ReplicaId,
        n: usize,
        heard: Vec<bool>,
        committed: bool,
        round: Round,
    }

    impl PingEngine {
        fn new(id: u16, n: usize) -> Self {
            PingEngine {
                id: ReplicaId(id),
                n,
                heard: vec![false; n],
                committed: false,
                round: Round(0),
            }
        }
    }

    impl Engine for PingEngine {
        fn id(&self) -> ReplicaId {
            self.id
        }
        fn protocol_name(&self) -> &'static str {
            "ping"
        }
        fn on_init(&mut self, now: Time) -> Actions {
            let mut a = Actions::none();
            a.broadcast(Message::Sync(SyncMsg::Request {
                hash: BlockHash::ZERO,
            }));
            a.arm(
                now + Duration::from_secs(1),
                TimerKind::RoundTimeout { round: 0 },
            );
            a
        }
        fn on_message(&mut self, from: ReplicaId, _msg: Message, now: Time) -> Actions {
            self.heard[from.as_usize()] = true;
            let all = (0..self.n)
                .filter(|&i| i != self.id.as_usize())
                .all(|i| self.heard[i]);
            let mut a = Actions::none();
            if all && !self.committed {
                self.committed = true;
                a.commit(CommitEntry {
                    round: Round(1),
                    block: BlockHash([1; 32]),
                    proposer: self.id,
                    payload: banyan_types::Payload::synthetic(10, 0),
                    proposed_at: Time::ZERO,
                    committed_at: now,
                    fast: false,
                    explicit: true,
                });
            }
            a
        }
        fn on_timer(&mut self, _kind: TimerKind, _now: Time) -> Actions {
            Actions::none()
        }
        fn current_round(&self) -> Round {
            self.round
        }
    }

    fn build(n: usize, faults: FaultPlan, seed: u64) -> Simulation {
        let topo = Topology::uniform(n, Duration::from_millis(10));
        let engines: Vec<Box<dyn Engine>> = (0..n)
            .map(|i| Box::new(PingEngine::new(i as u16, n)) as Box<dyn Engine>)
            .collect();
        Simulation::new(topo, engines, faults, SimConfig::with_seed(seed))
    }

    #[test]
    fn all_replicas_hear_all_pings() {
        let mut sim = build(4, FaultPlan::none(), 1);
        let metrics = sim.run_until(Time(Duration::from_secs(2).as_nanos()));
        // Every replica commits once after hearing 3 peers.
        assert_eq!(metrics.commits.len(), 4);
        // 4 replicas broadcast to 3 peers each.
        assert_eq!(metrics.messages_sent, 12);
        assert!(sim.auditor().is_safe());
    }

    #[test]
    fn messages_arrive_after_propagation_delay() {
        let mut sim = build(2, FaultPlan::none(), 1);
        let metrics = sim.run_until(Time(Duration::from_secs(1).as_nanos()));
        // Commit happens at ≥ 10ms (one-way delay).
        let commit_at = metrics.commits[0].entry.committed_at;
        assert!(commit_at >= Time(Duration::from_millis(10).as_nanos()));
        // And not absurdly later (jitter is ≤ 0.5ms, tx time tiny).
        assert!(commit_at < Time(Duration::from_millis(15).as_nanos()));
    }

    #[test]
    fn crashed_replica_neither_sends_nor_commits() {
        let plan = FaultPlan::none().crash(ReplicaId(0), Time::ZERO);
        let mut sim = build(4, plan, 1);
        let metrics = sim.run_until(Time(Duration::from_secs(2).as_nanos()));
        // Replica 0 never pings → nobody hears 3 peers... except replica 0
        // is also down, so zero commits in total.
        assert_eq!(metrics.commits.len(), 0);
        // Only 3 replicas broadcast.
        assert_eq!(metrics.messages_sent, 9);
        // Messages to the crashed replica are counted as dropped.
        assert_eq!(metrics.messages_dropped, 3);
    }

    #[test]
    fn partition_drops_messages() {
        let plan = FaultPlan::none().partition(
            vec![ReplicaId(0), ReplicaId(1)],
            vec![ReplicaId(2), ReplicaId(3)],
            Time::ZERO,
            Time(Duration::from_secs(10).as_nanos()),
        );
        let mut sim = build(4, plan, 1);
        let metrics = sim.run_until(Time(Duration::from_secs(2).as_nanos()));
        // Cross-partition messages (2 per sender) all dropped.
        assert_eq!(metrics.commits.len(), 0);
        assert_eq!(metrics.messages_dropped, 8);
    }

    #[test]
    fn same_seed_same_run() {
        let run = |seed: u64| -> Vec<(u16, u64)> {
            let mut sim = build(5, FaultPlan::none(), seed);
            sim.run_until(Time(Duration::from_secs(2).as_nanos()));
            sim.metrics()
                .commits
                .iter()
                .map(|c| (c.replica.0, c.entry.committed_at.as_nanos()))
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should shift jitter");
    }

    #[test]
    fn fifo_links_preserve_order() {
        // With zero jitter, a later send can never arrive earlier.
        let topo = Topology::uniform(2, Duration::from_millis(5));
        struct Burst {
            id: ReplicaId,
            seen: Vec<u64>,
        }
        impl Engine for Burst {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn protocol_name(&self) -> &'static str {
                "burst"
            }
            fn on_init(&mut self, _now: Time) -> Actions {
                let mut a = Actions::none();
                if self.id == ReplicaId(0) {
                    for i in 0..10u8 {
                        a.send(
                            ReplicaId(1),
                            Message::Sync(SyncMsg::Request {
                                hash: BlockHash([i; 32]),
                            }),
                        );
                    }
                }
                a
            }
            fn on_message(&mut self, _from: ReplicaId, msg: Message, _now: Time) -> Actions {
                if let Message::Sync(SyncMsg::Request { hash }) = msg {
                    self.seen.push(hash.0[0] as u64);
                }
                Actions::none()
            }
            fn on_timer(&mut self, _kind: TimerKind, _now: Time) -> Actions {
                Actions::none()
            }
            fn current_round(&self) -> Round {
                Round(0)
            }
        }
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(Burst {
                id: ReplicaId(0),
                seen: vec![],
            }),
            Box::new(Burst {
                id: ReplicaId(1),
                seen: vec![],
            }),
        ];
        let mut cfg = SimConfig::with_seed(3);
        cfg.jitter = Duration::from_millis(20); // huge jitter to try to reorder
        let mut sim = Simulation::new(topo, engines, FaultPlan::none(), cfg);
        sim.run_until(Time(Duration::from_secs(1).as_nanos()));
        // Downcast trick: we can't easily read engine state through the
        // trait, so assert via messages_sent and rely on the dedicated
        // ordering check below.
        assert_eq!(sim.metrics().messages_sent, 10);
        // The FIFO guarantee is structural: arrivals are clamped to be
        // strictly increasing per link (see schedule_delivery).
    }

    #[test]
    fn broadcast_serializes_on_uplink() {
        // 3 receivers × 8ms serialization (1 MB at 1 Gbit/s): the last copy
        // departs at 24 ms, so its arrival is ≥ 24 + 10 ms.
        struct OneShot {
            id: ReplicaId,
            arrivals: u64,
        }
        impl Engine for OneShot {
            fn id(&self) -> ReplicaId {
                self.id
            }
            fn protocol_name(&self) -> &'static str {
                "oneshot"
            }
            fn on_init(&mut self, _now: Time) -> Actions {
                let mut a = Actions::none();
                if self.id == ReplicaId(0) {
                    let block = banyan_types::Block {
                        round: Round(1),
                        proposer: ReplicaId(0),
                        rank: banyan_types::Rank(0),
                        parent: BlockHash::ZERO,
                        proposed_at: Time::ZERO,
                        payload: banyan_types::Payload::synthetic(1_000_000, 0),
                        signature: banyan_crypto_placeholder_sig(),
                    };
                    a.broadcast(Message::Sync(SyncMsg::Response { block }));
                }
                a
            }
            fn on_message(&mut self, _from: ReplicaId, _msg: Message, _now: Time) -> Actions {
                self.arrivals += 1;
                Actions::none()
            }
            fn on_timer(&mut self, _kind: TimerKind, _now: Time) -> Actions {
                Actions::none()
            }
            fn current_round(&self) -> Round {
                Round(0)
            }
        }
        fn banyan_crypto_placeholder_sig() -> banyan_crypto::Signature {
            banyan_crypto::Signature::zero()
        }
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let engines: Vec<Box<dyn Engine>> = (0..4)
            .map(|i| {
                Box::new(OneShot {
                    id: ReplicaId(i as u16),
                    arrivals: 0,
                }) as Box<dyn Engine>
            })
            .collect();
        let mut cfg = SimConfig::with_seed(1);
        cfg.jitter = Duration::ZERO;
        let mut sim = Simulation::new(topo, engines, FaultPlan::none(), cfg);
        sim.run_until(Time(Duration::from_secs(1).as_nanos()));
        assert_eq!(sim.metrics().messages_sent, 3);
        // ~3 MB on the wire.
        assert!(sim.metrics().bytes_sent > 3_000_000);
    }
}
