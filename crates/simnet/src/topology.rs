//! WAN topologies: where replicas sit and what the links between them cost.
//!
//! The paper's testbeds (Fig. 5) are AWS `t3.large` instances in
//! 4 global datacenters (§9.3), 4 US datacenters (§9.4) and 19 worldwide
//! datacenters (§9.5). We reproduce them with a geodesic latency model
//! (substitution **R1** in `DESIGN.md`):
//!
//! > one-way delay = great-circle distance / fiber speed × routing
//! > inflation + per-hop overhead
//!
//! with inflation 1.4 and 2 ms overhead, which lands within ~40% of public
//! AWS inter-region RTT measurements for the pairs we cross-check in tests.
//! Replicas in the same datacenter see a symmetric 0.25 ms one-way delay.
//!
//! Bandwidth: each replica has a finite **egress** rate (default 1 Gbit/s,
//! matching `t3.large`'s sustained class). Broadcasting a 1 MB block to 18
//! peers therefore serializes ~144 ms of transmission on the sender's
//! uplink — exactly the effect that makes the paper's throughput/latency
//! curves bend at large block sizes.

use banyan_types::time::Duration;

/// A named datacenter location (AWS region).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Region {
    /// AWS-style region code.
    pub name: &'static str,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// The 19 AWS regions used for the global testbed (§9.5), roughly the set
/// available to the authors in 2024.
pub const AWS_REGIONS: [Region; 19] = [
    Region {
        name: "us-east-1",
        lat: 38.9,
        lon: -77.4,
    }, // N. Virginia
    Region {
        name: "us-east-2",
        lat: 40.0,
        lon: -83.0,
    }, // Ohio
    Region {
        name: "us-west-1",
        lat: 37.4,
        lon: -121.9,
    }, // N. California
    Region {
        name: "us-west-2",
        lat: 45.8,
        lon: -119.7,
    }, // Oregon
    Region {
        name: "ca-central-1",
        lat: 45.5,
        lon: -73.6,
    }, // Montreal
    Region {
        name: "sa-east-1",
        lat: -23.5,
        lon: -46.6,
    }, // São Paulo
    Region {
        name: "eu-west-1",
        lat: 53.3,
        lon: -6.3,
    }, // Ireland
    Region {
        name: "eu-west-2",
        lat: 51.5,
        lon: -0.1,
    }, // London
    Region {
        name: "eu-west-3",
        lat: 48.9,
        lon: 2.4,
    }, // Paris
    Region {
        name: "eu-central-1",
        lat: 50.1,
        lon: 8.7,
    }, // Frankfurt
    Region {
        name: "eu-north-1",
        lat: 59.3,
        lon: 18.1,
    }, // Stockholm
    Region {
        name: "eu-south-1",
        lat: 45.5,
        lon: 9.2,
    }, // Milan
    Region {
        name: "me-south-1",
        lat: 26.2,
        lon: 50.6,
    }, // Bahrain
    Region {
        name: "ap-south-1",
        lat: 19.1,
        lon: 72.9,
    }, // Mumbai
    Region {
        name: "ap-southeast-1",
        lat: 1.3,
        lon: 103.8,
    }, // Singapore
    Region {
        name: "ap-southeast-2",
        lat: -33.9,
        lon: 151.2,
    }, // Sydney
    Region {
        name: "ap-northeast-1",
        lat: 35.7,
        lon: 139.7,
    }, // Tokyo
    Region {
        name: "ap-northeast-2",
        lat: 37.6,
        lon: 126.9,
    }, // Seoul
    Region {
        name: "af-south-1",
        lat: -33.9,
        lon: 18.4,
    }, // Cape Town
];

/// Looks up a region by name.
pub fn region(name: &str) -> Option<Region> {
    AWS_REGIONS.iter().copied().find(|r| r.name == name)
}

/// Great-circle distance between two regions in kilometers (haversine).
pub fn distance_km(a: Region, b: Region) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * 6371.0 * h.sqrt().asin()
}

/// Speed of light in fiber, km per millisecond.
const FIBER_KM_PER_MS: f64 = 204.0;
/// Path inflation: real routes are not great circles.
const ROUTE_INFLATION: f64 = 1.4;
/// Fixed per-path overhead (switching, last-mile), one-way, in ms.
const PATH_OVERHEAD_MS: f64 = 2.0;
/// One-way delay between two replicas in the same datacenter, in ms.
const INTRA_DC_MS: f64 = 0.25;

/// Modeled one-way delay between two regions.
pub fn one_way_delay(a: Region, b: Region) -> Duration {
    if a.name == b.name {
        return Duration::from_secs_f64(INTRA_DC_MS / 1e3);
    }
    let ms = distance_km(a, b) / FIBER_KM_PER_MS * ROUTE_INFLATION + PATH_OVERHEAD_MS;
    Duration::from_secs_f64(ms / 1e3)
}

/// A concrete deployment: every replica pinned to a site, with a full
/// one-way delay matrix and per-replica egress bandwidth.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable site label per replica.
    site_labels: Vec<&'static str>,
    /// `one_way[a][b]`: modeled one-way delay from replica `a` to `b`.
    one_way: Vec<Vec<Duration>>,
    /// Egress bandwidth per replica, bits per second.
    egress_bps: u64,
}

impl Topology {
    /// Builds a topology by assigning each replica to a region.
    pub fn from_sites(sites: &[Region]) -> Self {
        let n = sites.len();
        let mut one_way = vec![vec![Duration::ZERO; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    one_way[a][b] = one_way_delay(sites[a], sites[b]);
                }
            }
        }
        Topology {
            site_labels: sites.iter().map(|r| r.name).collect(),
            one_way,
            egress_bps: 1_000_000_000,
        }
    }

    /// Uniform synthetic topology: every pair `one_way` apart. Used for
    /// step-count experiments (Fig. 1) where δ must be a single constant.
    pub fn uniform(n: usize, one_way: Duration) -> Self {
        let mut m = vec![vec![one_way; n]; n];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = Duration::ZERO;
        }
        Topology {
            site_labels: vec!["uniform"; n],
            one_way: m,
            egress_bps: 1_000_000_000,
        }
    }

    /// `counts[i]` replicas in `regions[i]`, concatenated in order.
    ///
    /// # Panics
    ///
    /// Panics if `regions` and `counts` lengths differ.
    pub fn clustered(regions: &[Region], counts: &[usize]) -> Self {
        assert_eq!(regions.len(), counts.len(), "one count per region");
        let mut sites = Vec::new();
        for (region, &count) in regions.iter().zip(counts) {
            sites.extend(std::iter::repeat_n(*region, count));
        }
        Self::from_sites(&sites)
    }

    /// The paper's §9.3 testbed: 19 replicas in 4 global datacenters,
    /// 5 + 5 + 5 + 4.
    pub fn four_global_19() -> Self {
        let regions = [
            region("us-east-1").expect("region exists"),
            region("eu-central-1").expect("region exists"),
            region("ap-northeast-1").expect("region exists"),
            region("us-west-2").expect("region exists"),
        ];
        Self::clustered(&regions, &[5, 5, 5, 4])
    }

    /// The paper's §9.3 small-cluster testbed: 4 replicas, one per global
    /// datacenter.
    pub fn four_global_4() -> Self {
        let regions = [
            region("us-east-1").expect("region exists"),
            region("eu-central-1").expect("region exists"),
            region("ap-northeast-1").expect("region exists"),
            region("us-west-2").expect("region exists"),
        ];
        Self::clustered(&regions, &[1, 1, 1, 1])
    }

    /// The paper's §9.4 testbed: 19 replicas in 4 US datacenters.
    pub fn four_us_19() -> Self {
        let regions = [
            region("us-east-1").expect("region exists"),
            region("us-east-2").expect("region exists"),
            region("us-west-1").expect("region exists"),
            region("us-west-2").expect("region exists"),
        ];
        Self::clustered(&regions, &[5, 5, 5, 4])
    }

    /// The paper's §9.5 testbed: 19 replicas, one per worldwide datacenter.
    pub fn nineteen_global() -> Self {
        Self::from_sites(&AWS_REGIONS)
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.site_labels.len()
    }

    /// Site label of a replica.
    pub fn site(&self, replica: usize) -> &'static str {
        self.site_labels[replica]
    }

    /// One-way propagation delay from `a` to `b`.
    pub fn delay(&self, a: usize, b: usize) -> Duration {
        self.one_way[a][b]
    }

    /// Per-replica egress bandwidth in bits per second.
    pub fn egress_bps(&self) -> u64 {
        self.egress_bps
    }

    /// Builder-style: overrides the egress bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_egress_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.egress_bps = bps;
        self
    }

    /// Transmission (serialization) time for `bytes` on one replica's
    /// uplink.
    pub fn transmit_time(&self, bytes: u64) -> Duration {
        Duration((bytes.saturating_mul(8).saturating_mul(1_000_000_000)) / self.egress_bps)
    }

    /// The largest one-way delay in the deployment — the natural choice
    /// for the protocol's `Δ` bound ("larger than the message delay
    /// experienced without network disruptions", §9.2).
    pub fn max_one_way(&self) -> Duration {
        self.one_way
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Gossip fanout set for `from`: the peers it relays pending requests
    /// to when propagation-limited gossip is on.
    ///
    /// The ring successor `(from + 1) % n` is always included, so the
    /// union of all fanout edges contains a Hamiltonian cycle and every
    /// relay cascade reaches every replica regardless of fanout. The
    /// remaining `fanout - 1` slots go to the lowest-delay peers, with a
    /// seeded hash breaking delay ties (common in uniform and clustered
    /// topologies) so different seeds explore different trees while a
    /// fixed seed stays bit-stable.
    pub fn fanout_peers(&self, from: usize, fanout: usize, seed: u64) -> Vec<usize> {
        let n = self.n();
        if n <= 1 {
            return Vec::new();
        }
        let fanout = fanout.clamp(1, n - 1);
        let successor = (from + 1) % n;
        let mut peers = vec![successor];
        if fanout == 1 {
            return peers;
        }
        let mut rest: Vec<usize> = (0..n).filter(|&p| p != from && p != successor).collect();
        rest.sort_by_key(|&p| (self.one_way[from][p], tie_break(seed, from, p)));
        peers.extend(rest.into_iter().take(fanout - 1));
        peers
    }

    /// Median one-way delay across distinct pairs (reporting aid).
    pub fn median_one_way(&self) -> Duration {
        let mut delays: Vec<Duration> = Vec::new();
        for a in 0..self.n() {
            for b in 0..self.n() {
                if a != b {
                    delays.push(self.one_way[a][b]);
                }
            }
        }
        if delays.is_empty() {
            return Duration::ZERO;
        }
        delays.sort_unstable();
        delays[delays.len() / 2]
    }
}

/// Deterministic tie-break hash for fanout peer selection (splitmix64 over
/// the seed and the edge endpoints).
fn tie_break(seed: u64, from: usize, peer: usize) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((from as u64) << 32 | peer as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_sane() {
        let va = region("us-east-1").unwrap();
        let fra = region("eu-central-1").unwrap();
        let tokyo = region("ap-northeast-1").unwrap();
        // Virginia–Frankfurt ≈ 6,500 km; Virginia–Tokyo ≈ 10,900 km.
        let d1 = distance_km(va, fra);
        assert!((6000.0..7200.0).contains(&d1), "VA-FRA {d1} km");
        let d2 = distance_km(va, tokyo);
        assert!((10000.0..11800.0).contains(&d2), "VA-TYO {d2} km");
    }

    #[test]
    fn modeled_rtts_land_near_public_measurements() {
        // Public AWS inter-region RTT ballparks (ms): us-east-1 ↔
        // eu-central-1 ≈ 90, us-east-1 ↔ ap-northeast-1 ≈ 160,
        // us-west-2 ↔ ap-northeast-1 ≈ 100. Allow a generous ±40% band —
        // we need shape, not precision.
        let cases = [
            ("us-east-1", "eu-central-1", 90.0),
            ("us-east-1", "ap-northeast-1", 160.0),
            ("us-west-2", "ap-northeast-1", 100.0),
            ("us-east-1", "us-west-2", 70.0),
        ];
        for (a, b, expect_rtt_ms) in cases {
            let d = one_way_delay(region(a).unwrap(), region(b).unwrap());
            let rtt_ms = d.as_millis_f64() * 2.0;
            assert!(
                (expect_rtt_ms * 0.6..=expect_rtt_ms * 1.4).contains(&rtt_ms),
                "{a}->{b}: modeled {rtt_ms:.1} ms vs public {expect_rtt_ms} ms"
            );
        }
    }

    #[test]
    fn delay_matrix_is_symmetric_with_zero_diagonal() {
        let t = Topology::four_global_19();
        assert_eq!(t.n(), 19);
        for a in 0..19 {
            assert_eq!(t.delay(a, a), Duration::ZERO);
            for b in 0..19 {
                assert_eq!(t.delay(a, b), t.delay(b, a));
            }
        }
    }

    #[test]
    fn intra_dc_is_fast() {
        let t = Topology::four_global_19();
        // Replicas 0..5 share us-east-1.
        assert!(t.delay(0, 1).as_millis_f64() < 1.0);
        // Cross-continent pairs are slow.
        assert!(t.delay(0, 10).as_millis_f64() > 30.0);
    }

    #[test]
    fn paper_testbeds_have_expected_sizes() {
        assert_eq!(Topology::four_global_19().n(), 19);
        assert_eq!(Topology::four_global_4().n(), 4);
        assert_eq!(Topology::four_us_19().n(), 19);
        assert_eq!(Topology::nineteen_global().n(), 19);
    }

    #[test]
    fn us_testbed_is_faster_than_global() {
        let us = Topology::four_us_19();
        let global = Topology::four_global_19();
        assert!(us.max_one_way() < global.max_one_way());
    }

    #[test]
    fn transmit_time_matches_bandwidth() {
        let t = Topology::uniform(2, Duration::from_millis(10));
        // 1 MB at 1 Gbit/s = 8 ms.
        let tx = t.transmit_time(1_000_000);
        assert_eq!(tx, Duration::from_millis(8));
        // Override to 100 Mbit/s → 80 ms.
        let t = t.with_egress_bps(100_000_000);
        assert_eq!(t.transmit_time(1_000_000), Duration::from_millis(80));
    }

    #[test]
    fn uniform_topology_is_uniform() {
        let t = Topology::uniform(5, Duration::from_millis(25));
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(t.delay(a, b), Duration::from_millis(25));
                }
            }
        }
        assert_eq!(t.max_one_way(), Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = Topology::uniform(2, Duration::ZERO).with_egress_bps(0);
    }

    #[test]
    fn fanout_peers_include_ring_successor_and_prefer_low_delay() {
        let t = Topology::four_global_19();
        for from in 0..t.n() {
            for fanout in 1..=4 {
                let peers = t.fanout_peers(from, fanout, 42);
                assert_eq!(peers.len(), fanout);
                assert!(peers.contains(&((from + 1) % t.n())));
                assert!(!peers.contains(&from), "never self");
                let mut sorted = peers.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), fanout, "no duplicate peers");
            }
        }
        // Replica 0 sits in us-east-1 with replicas 1..5; its non-ring
        // picks must be intra-DC peers, not cross-continent ones.
        let peers = t.fanout_peers(0, 3, 42);
        for &p in &peers[1..] {
            assert!(p < 5, "low-delay pick {p} should be intra-DC");
        }
    }

    #[test]
    fn fanout_tree_reaches_all_replicas_from_any_origin() {
        for topo in [
            Topology::uniform(8, Duration::from_millis(5)),
            Topology::four_global_19(),
            Topology::nineteen_global(),
        ] {
            let n = topo.n();
            for fanout in 1..=3 {
                for seed in [1u64, 42, 7777] {
                    for origin in 0..n {
                        // BFS over fanout edges: origin forwards to its
                        // fanout set, each first-time receiver relays to
                        // its own fanout set (minus already-seen nodes,
                        // mirroring dedup-based cascade termination).
                        let mut seen = vec![false; n];
                        seen[origin] = true;
                        let mut frontier = vec![origin];
                        while let Some(at) = frontier.pop() {
                            for p in topo.fanout_peers(at, fanout, seed) {
                                if !seen[p] {
                                    seen[p] = true;
                                    frontier.push(p);
                                }
                            }
                        }
                        assert!(
                            seen.iter().all(|&s| s),
                            "n={n} fanout={fanout} seed={seed} origin={origin}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fanout_peers_are_deterministic_per_seed() {
        let t = Topology::uniform(16, Duration::from_millis(5));
        for from in 0..16 {
            let a = t.fanout_peers(from, 3, 99);
            let b = t.fanout_peers(from, 3, 99);
            assert_eq!(a, b);
        }
        // On a uniform topology every non-successor delay ties, so the
        // seeded tie-break decides the set; distinct seeds should differ
        // for at least one origin.
        let differs = (0..16).any(|from| t.fanout_peers(from, 3, 1) != t.fanout_peers(from, 3, 2));
        assert!(differs, "seeds should explore different trees");
    }

    #[test]
    fn fanout_clamps_to_cluster_size() {
        let t = Topology::uniform(4, Duration::from_millis(5));
        assert_eq!(t.fanout_peers(0, 100, 42).len(), 3);
        assert_eq!(t.fanout_peers(0, 0, 42).len(), 1, "at least the ring");
        let t1 = Topology::uniform(1, Duration::from_millis(5));
        assert!(t1.fanout_peers(0, 2, 42).is_empty());
    }

    #[test]
    fn median_one_way_is_reasonable() {
        let t = Topology::nineteen_global();
        let med = t.median_one_way();
        assert!(med > Duration::from_millis(10));
        assert!(med < t.max_one_way());
    }
}
