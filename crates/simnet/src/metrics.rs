//! Measurement pipeline: the paper's two metrics plus diagnostics.
//!
//! §9.2 defines the metrics this module computes:
//!
//! * **latency** — "average proposal finalization time, measured at the
//!   respective proposer using their system clocks": for every block a
//!   replica itself proposed, the time from proposing to that same replica
//!   finalizing it.
//! * **throughput** — "average number of committed bytes per second at any
//!   (non-faulty) replica".
//!
//! Plus: block intervals (Fig. 6d's second panel), latency percentiles
//! (Fig. 6c), fast-path share, and message/byte counters.
//!
//! Runs driven by a client workload (see [`crate::workload`]) additionally
//! get **end-to-end client latency** — submit→commit, measured at the
//! proposer that batched the request — which is what FnF-BFT/Moonshot-style
//! evaluations report and is always ≥ the paper's proposer latency (the
//! request waits in a mempool before it is even proposed).

use std::collections::{BTreeMap, HashSet};

use banyan_runtime::driver::CommitSink;
use banyan_types::engine::CommitEntry;
use banyan_types::ids::{BlockHash, ReplicaId, Round};
use banyan_types::time::{Duration, Time};

use crate::workload::WorkloadBatch;

/// `count` events over `secs` seconds as a rate, 0 for an empty window.
/// The one rate formula every goodput/throughput report shares.
pub fn per_second(count: u64, secs: f64) -> f64 {
    if secs == 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// An order-statistics summary over a set of duration samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean, in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation, in milliseconds.
    pub std_ms: f64,
    /// Minimum, in milliseconds.
    pub min_ms: f64,
    /// Median (p50), in milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, in milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, in milliseconds.
    pub p99_ms: f64,
    /// Maximum, in milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes the summary from raw samples. Returns the default (all
    /// zeros) for an empty set.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_millis_f64()).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let count = ms.len();
        let mean = ms.iter().sum::<f64>() / count as f64;
        let var = ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * q).round() as usize;
            ms[idx.min(count - 1)]
        };
        LatencyStats {
            count,
            mean_ms: mean,
            std_ms: var.sqrt(),
            min_ms: ms[0],
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p99_ms: pct(0.99),
            max_ms: ms[count - 1],
        }
    }
}

/// One replica's commit, as observed by the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedCommit {
    /// The replica that committed.
    pub replica: ReplicaId,
    /// The commit itself.
    pub entry: CommitEntry,
}

/// Global safety observer: ingests every commit from every replica and
/// detects disagreement — two replicas finalizing different blocks for the
/// same round. Every simulation run doubles as a safety test through this.
#[derive(Clone, Debug, Default)]
pub struct SafetyAuditor {
    /// Canonical block per round (first commit wins; all later commits for
    /// the round must match).
    canonical: BTreeMap<Round, BlockHash>,
    /// Human-readable descriptions of violations found.
    violations: Vec<String>,
}

impl SafetyAuditor {
    /// Fresh auditor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one commit.
    pub fn observe(&mut self, replica: ReplicaId, entry: &CommitEntry) {
        match self.canonical.get(&entry.round) {
            None => {
                self.canonical.insert(entry.round, entry.block);
            }
            Some(expected) if *expected != entry.block => {
                self.violations.push(format!(
                    "SAFETY VIOLATION: round {} committed as {} by earlier replica but {} by {}",
                    entry.round, expected, entry.block, replica
                ));
            }
            Some(_) => {}
        }
    }

    /// All violations found so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True if no disagreement was observed.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of rounds with at least one commit.
    pub fn committed_rounds(&self) -> usize {
        self.canonical.len()
    }
}

/// One run's client-workload numbers, reduced to what a saturation sweep
/// plots: goodput (committed requests/sec), the end-to-end latency
/// distribution, and the per-client fairness spread.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClientLoadSummary {
    /// End-to-end (submit→commit) latency over all clients.
    pub latency: LatencyStats,
    /// Committed client requests per second over the run.
    pub goodput_rps: f64,
    /// Requests submitted by the workload.
    pub requests_submitted: u64,
    /// Requests that reached a committed block (counted at the proposer).
    pub requests_committed: u64,
    /// Distinct clients with at least one committed request.
    pub clients_observed: usize,
    /// Smallest per-client mean latency, ms (0 when no samples).
    pub min_client_mean_ms: f64,
    /// Largest per-client mean latency, ms (0 when no samples) — the gap
    /// to `min_client_mean_ms` is the fairness spread.
    pub max_client_mean_ms: f64,
}

/// Everything measured over one simulation run.
///
/// `PartialEq` is derived so determinism tests can assert bit-identical
/// reruns (every field, including the full commit log, must match).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Every commit at every replica, in commit order.
    pub commits: Vec<ObservedCommit>,
    /// Messages enqueued on the network.
    pub messages_sent: u64,
    /// Total bytes enqueued on the network (wire size incl. payload).
    pub bytes_sent: u64,
    /// Messages dropped because the receiver had crashed.
    pub messages_dropped: u64,
    /// Client requests submitted by the attached workload (0 when none).
    /// Retransmissions of an already-submitted id are counted in
    /// [`requests_retried`](Self::requests_retried), not here.
    pub requests_submitted: u64,
    /// Requests the workload observed committed (first delivery per id,
    /// from any replica). 0 for runs without a client workload.
    pub requests_completed: u64,
    /// Requests still pending (live) in the per-replica mempools at the
    /// end of the run.
    pub requests_pending: u64,
    /// Client retransmissions performed by the workload.
    pub requests_retried: u64,
    /// Catch-up requests issued by recovering replicas (frontier probes
    /// plus ranged fetches, counted at the requester).
    pub sync_requests: u64,
    /// Blocks served in catch-up `ResponseBatch` replies (counted at the
    /// serving replica).
    pub sync_blocks_served: u64,
    /// Total crash-recovery latency, ms: for every restarted replica, the
    /// span from its rejoin instant to its catch-up state machine
    /// finishing, summed (integer ms so determinism stays `Eq`-checkable).
    pub restart_recovery_ms: u64,
    /// Gauge: bytes held in the replicas' write-ahead logs at run end
    /// (0 for purely in-memory stores).
    pub wal_bytes: u64,
    /// Individual signature verifications performed by the replicas'
    /// verify planes over the run (0 when verification is off).
    pub sigs_verified: u64,
    /// Batched verification calls issued (each covering ≥ 2 signatures).
    pub verify_batches: u64,
    /// Certificate verifications answered from the bounded LRU cache.
    pub cert_cache_hits: u64,
    /// Virtual CPU milliseconds charged for signature verification by the
    /// simulator's crypto cost model (integer ms so determinism stays
    /// `Eq`-checkable). On the TCP path this is measured wall CPU instead.
    pub verify_cpu_ms: u64,
    /// Bytes of request-dissemination traffic (gossip `Forward` bodies
    /// and fanout-tree `Announce` records) put on the wire, a subset of
    /// `bytes_sent`. Propagation-limited gossip exists to shrink this.
    pub gossip_bytes: u64,
    /// Forward-path losses: shared-outbox overflow drops plus per-peer
    /// backpressure sheds, summed over every pool at run end. Retry and
    /// re-gossip recover the requests; the counter sizes the pressure.
    pub forwards_dropped: u64,
    /// Virtual time at the end of the run.
    pub end_time: Time,
}

impl CommitSink for RunMetrics {
    fn on_commit(&mut self, replica: ReplicaId, entry: CommitEntry) {
        self.commits.push(ObservedCommit { replica, entry });
    }
}

impl RunMetrics {
    /// Proposal-finalization latencies measured at proposers (the paper's
    /// latency metric): for every commit where the committing replica is
    /// the proposer, `committed_at − proposed_at`.
    pub fn proposer_latencies(&self) -> Vec<Duration> {
        self.commits
            .iter()
            .filter(|c| c.replica == c.entry.proposer)
            .map(|c| c.entry.committed_at.since(c.entry.proposed_at))
            .collect()
    }

    /// Latency summary over [`Self::proposer_latencies`].
    pub fn proposer_latency_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(&self.proposer_latencies())
    }

    /// End-to-end client latencies: for every request batched into a
    /// committed block, `committed_at − submitted_at`, measured at the
    /// replica that proposed the block (mirroring the paper's
    /// proposer-side methodology — and, like it, yielding no sample for a
    /// block whose proposer crashed before observing its own commit).
    /// Empty for runs without a client workload — batches are recovered
    /// from the committed payloads via [`WorkloadBatch::decode`].
    pub fn client_latencies(&self) -> Vec<Duration> {
        self.client_samples().into_iter().map(|(_, d)| d).collect()
    }

    /// The one decode pass every client metric is built on: walks the
    /// commit log in order, keeps proposer-side commits only, dedups by
    /// request id — the first committed occurrence wins, which is the
    /// metrics half of the dissemination layer's exactly-once rule (a
    /// re-gossiped, retried or fanned-out request can land in more than
    /// one committed block) — and yields `(client, submit→commit)` per
    /// batched request.
    fn client_samples(&self) -> Vec<(u16, Duration)> {
        self.client_samples_with_duplicates().0
    }

    /// The deduped `(client, submit→commit)` samples plus the number of
    /// suppressed duplicate occurrences, in one decode pass over the
    /// commit log. Harnesses that need both (latency stats *and* the
    /// duplicate counter) should call this once instead of
    /// [`client_latencies`](Self::client_latencies) +
    /// [`duplicate_requests_suppressed`](Self::duplicate_requests_suppressed),
    /// which each repeat the pass.
    pub fn client_samples_with_duplicates(&self) -> (Vec<(u16, Duration)>, u64) {
        let mut seen = HashSet::new();
        let mut samples = Vec::new();
        let mut duplicates = 0;
        for c in self
            .commits
            .iter()
            .filter(|c| c.replica == c.entry.proposer)
        {
            let Some(batch) = WorkloadBatch::decode(&c.entry.payload) else {
                continue;
            };
            for req in &batch.requests {
                if seen.insert(req.id) {
                    samples.push((req.client, c.entry.committed_at.since(req.submitted_at)));
                } else {
                    duplicates += 1;
                }
            }
        }
        (samples, duplicates)
    }

    /// Batched request occurrences suppressed by the exactly-once dedup:
    /// copies of an already-counted id found in a later committed block
    /// (possible only with gossip, fan-out or retry enabled — a plain
    /// single-pool run never double-commits). Duplicate *bandwidth* is
    /// still charged; duplicate goodput never is.
    pub fn duplicate_requests_suppressed(&self) -> u64 {
        self.client_samples_with_duplicates().1
    }

    /// Requests lost to the request path: submitted but neither observed
    /// committed nor still pending in any pool — i.e. drained into a
    /// proposal that never finalized, with no surviving copy.
    /// `submitted − completed − pending`, saturating at zero.
    ///
    /// Mid-run this includes requests still in flight between a pool and
    /// a commit; after a drain phase (see `Simulation::freeze_workload`)
    /// it counts only genuinely stranded work, and with retry and/or
    /// gossip on it must end at zero.
    pub fn requests_lost(&self) -> u64 {
        self.requests_submitted
            .saturating_sub(self.requests_completed + self.requests_pending)
    }

    /// Latency summary over [`Self::client_latencies`].
    pub fn client_latency_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(&self.client_latencies())
    }

    /// Per-client submit→commit series: the end-to-end samples of
    /// [`Self::client_latencies`], keyed by the submitting client (in
    /// commit order per client). The basis for fairness reporting —
    /// a starved or censored client shows up as a short, slow series.
    pub fn per_client_latencies(&self) -> BTreeMap<u16, Vec<Duration>> {
        let mut series: BTreeMap<u16, Vec<Duration>> = BTreeMap::new();
        for (client, latency) in self.client_samples() {
            series.entry(client).or_default().push(latency);
        }
        series
    }

    /// Longest per-client mean end-to-end latency among `targets`, ms
    /// (0 when none of them committed anything). The fairness probe for
    /// censorship experiments: a censored client's surviving commits go
    /// through retries and honest leaders, inflating exactly this number.
    pub fn max_client_mean_ms(&self, targets: &[u16]) -> f64 {
        self.per_client_latencies()
            .iter()
            .filter(|(client, _)| targets.contains(client))
            .map(|(_, s)| LatencyStats::from_samples(s).mean_ms)
            .fold(0.0, f64::max)
    }

    /// Goodput: committed client requests per second over the whole run
    /// (0 for runs without a client workload). This is the y-axis of a
    /// saturation sweep; under overload it plateaus while latency grows.
    pub fn goodput_rps(&self) -> f64 {
        per_second(self.requests_committed(), self.end_time.as_secs_f64())
    }

    /// One decode pass over the commit log reduced to the numbers a
    /// saturation sweep plots; see [`ClientLoadSummary`].
    pub fn client_load_summary(&self) -> ClientLoadSummary {
        let per_client = self.per_client_latencies();
        let all: Vec<Duration> = per_client.values().flatten().copied().collect();
        let requests_committed = all.len() as u64;
        let client_means: Vec<f64> = per_client
            .values()
            .map(|s| LatencyStats::from_samples(s).mean_ms)
            .collect();
        let min_mean = client_means.iter().copied().reduce(f64::min).unwrap_or(0.0);
        let max_mean = client_means.iter().copied().reduce(f64::max).unwrap_or(0.0);
        ClientLoadSummary {
            latency: LatencyStats::from_samples(&all),
            goodput_rps: per_second(requests_committed, self.end_time.as_secs_f64()),
            requests_submitted: self.requests_submitted,
            requests_committed,
            clients_observed: per_client.len(),
            min_client_mean_ms: min_mean,
            max_client_mean_ms: max_mean,
        }
    }

    /// Requests committed (counted once, at the proposer of the block that
    /// carried them — see [`Self::client_latencies`] for the crash caveat).
    pub fn requests_committed(&self) -> u64 {
        self.client_latencies().len() as u64
    }

    /// Throughput in committed payload bytes per second at `replica`
    /// (the paper's throughput metric).
    pub fn throughput_bps(&self, replica: ReplicaId) -> f64 {
        let bytes: u64 = self
            .commits
            .iter()
            .filter(|c| c.replica == replica)
            .map(|c| c.entry.payload_len())
            .sum();
        per_second(bytes, self.end_time.as_secs_f64())
    }

    /// Maximum throughput across replicas (a non-faulty replica's view;
    /// crashed replicas commit little and would bias the mean).
    pub fn max_throughput_bps(&self) -> f64 {
        (0..self.replica_count())
            .map(|r| self.throughput_bps(ReplicaId(r as u16)))
            .fold(0.0, f64::max)
    }

    /// Intervals between consecutive commits at `replica` (block interval,
    /// Fig. 6d).
    pub fn block_intervals(&self, replica: ReplicaId) -> Vec<Duration> {
        let mut times: Vec<Time> = self
            .commits
            .iter()
            .filter(|c| c.replica == replica)
            .map(|c| c.entry.committed_at)
            .collect();
        times.sort_unstable();
        times.windows(2).map(|w| w[1].since(w[0])).collect()
    }

    /// Intervals between consecutive **explicit** commits at `replica`.
    /// Implicit (ancestor-flush) commits land at the same instant as the
    /// explicit commit that finalized them and would zero the gaps, so
    /// they are excluded — what remains is the cadence at which the chain
    /// actually certifies-and-finalizes, the meter optimistic pipelining
    /// is supposed to move.
    pub fn explicit_commit_intervals(&self, replica: ReplicaId) -> Vec<Duration> {
        let mut times: Vec<Time> = self
            .commits
            .iter()
            .filter(|c| c.replica == replica && c.entry.explicit)
            .map(|c| c.entry.committed_at)
            .collect();
        times.sort_unstable();
        times.windows(2).map(|w| w[1].since(w[0])).collect()
    }

    /// Mean of [`Self::explicit_commit_intervals`] in milliseconds
    /// (0 with fewer than two explicit commits). Divided by the network
    /// delay bound Δ this is the sweep's *rounds-per-commit* meter: how
    /// many Δ-spans pass between consecutive finalizations.
    pub fn mean_commit_interval_ms(&self, replica: ReplicaId) -> f64 {
        let intervals = self.explicit_commit_intervals(replica);
        if intervals.is_empty() {
            return 0.0;
        }
        intervals.iter().map(|d| d.as_millis_f64()).sum::<f64>() / intervals.len() as f64
    }

    /// Fraction of explicit commits that used the fast path, at `replica`.
    pub fn fast_path_share(&self, replica: ReplicaId) -> f64 {
        let explicit: Vec<_> = self
            .commits
            .iter()
            .filter(|c| c.replica == replica && c.entry.explicit)
            .collect();
        if explicit.is_empty() {
            return 0.0;
        }
        explicit.iter().filter(|c| c.entry.fast).count() as f64 / explicit.len() as f64
    }

    /// Highest round committed anywhere.
    pub fn max_committed_round(&self) -> Option<Round> {
        self.commits.iter().map(|c| c.entry.round).max()
    }

    fn replica_count(&self) -> usize {
        self.commits
            .iter()
            .map(|c| c.replica.as_usize() + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(round: u64, block: u8, proposer: u16, proposed: u64, committed: u64) -> CommitEntry {
        CommitEntry {
            round: Round(round),
            block: BlockHash([block; 32]),
            proposer: ReplicaId(proposer),
            payload: banyan_types::Payload::synthetic(1000, u64::from(block)),
            proposed_at: Time(proposed),
            committed_at: Time(committed),
            fast: false,
            explicit: true,
        }
    }

    #[test]
    fn latency_stats_basic() {
        let samples = vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
            Duration::from_millis(40),
        ];
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 4);
        assert!((s.mean_ms - 25.0).abs() < 1e-9);
        assert_eq!(s.min_ms, 10.0);
        assert_eq!(s.max_ms, 40.0);
        assert!(s.p50_ms >= 20.0 && s.p50_ms <= 30.0);
        assert!(s.std_ms > 0.0);
    }

    #[test]
    fn latency_stats_empty_is_zero() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn auditor_accepts_agreement() {
        let mut a = SafetyAuditor::new();
        a.observe(ReplicaId(0), &entry(1, 7, 0, 0, 10));
        a.observe(ReplicaId(1), &entry(1, 7, 0, 0, 12));
        a.observe(ReplicaId(0), &entry(2, 8, 1, 5, 20));
        assert!(a.is_safe());
        assert_eq!(a.committed_rounds(), 2);
    }

    #[test]
    fn auditor_flags_conflicting_round() {
        let mut a = SafetyAuditor::new();
        a.observe(ReplicaId(0), &entry(1, 7, 0, 0, 10));
        a.observe(ReplicaId(1), &entry(1, 9, 0, 0, 12));
        assert!(!a.is_safe());
        assert!(a.violations()[0].contains("round k1"));
    }

    #[test]
    fn proposer_latency_only_counts_own_blocks() {
        let metrics = RunMetrics {
            commits: vec![
                // replica 0 commits its own block: counted (15ns).
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(1, 1, 0, 5, 20),
                },
                // replica 1 commits replica 0's block: not counted.
                ObservedCommit {
                    replica: ReplicaId(1),
                    entry: entry(1, 1, 0, 5, 40),
                },
            ],
            end_time: Time(1_000_000_000),
            ..Default::default()
        };
        let lats = metrics.proposer_latencies();
        assert_eq!(lats.len(), 1);
        assert_eq!(lats[0], Duration(15));
    }

    #[test]
    fn throughput_counts_bytes_per_second() {
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(1, 1, 0, 0, 10),
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(2, 2, 1, 0, 20),
                },
            ],
            end_time: Time(2_000_000_000), // 2 s
            ..Default::default()
        };
        // 2000 bytes over 2 s = 1000 B/s.
        assert!((metrics.throughput_bps(ReplicaId(0)) - 1000.0).abs() < 1e-9);
        assert_eq!(metrics.throughput_bps(ReplicaId(1)), 0.0);
    }

    #[test]
    fn block_intervals_are_ordered_gaps() {
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(2, 2, 0, 0, 300),
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(1, 1, 0, 0, 100),
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(3, 3, 0, 0, 600),
                },
            ],
            end_time: Time(1_000),
            ..Default::default()
        };
        assert_eq!(
            metrics.block_intervals(ReplicaId(0)),
            vec![Duration(200), Duration(300)]
        );
    }

    #[test]
    fn client_latency_recovered_from_committed_batches() {
        use crate::workload::{Request, WorkloadBatch};
        let batch = WorkloadBatch {
            requests: vec![Request {
                id: 1,
                client: 0,
                size: 100,
                submitted_at: Time(10),
            }],
        };
        let mut e = entry(1, 1, 0, 100, 300);
        e.payload = batch.into_payload();
        let metrics = RunMetrics {
            commits: vec![
                // Proposer-side commit: one sample of 300 − 10 ns.
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: e.clone(),
                },
                // The same block at another replica: not double-counted.
                ObservedCommit {
                    replica: ReplicaId(1),
                    entry: e,
                },
                // A synthetic-payload commit contributes no client sample.
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(2, 2, 0, 0, 400),
                },
            ],
            end_time: Time(1_000),
            ..Default::default()
        };
        assert_eq!(metrics.client_latencies(), vec![Duration(290)]);
        assert_eq!(metrics.requests_committed(), 1);
        assert_eq!(metrics.client_latency_stats().count, 1);
    }

    #[test]
    fn duplicate_committed_requests_count_once() {
        use crate::workload::{Request, WorkloadBatch};
        // The same request (gossiped to every pool, then also retried)
        // lands in two different committed blocks at two proposers. The
        // metrics layer must count it exactly once — first commit wins —
        // and report the later copy as a suppressed duplicate.
        let request = Request {
            id: 9,
            client: 1,
            size: 100,
            submitted_at: Time(50),
        };
        let mut first = entry(1, 1, 0, 60, 100);
        first.payload = WorkloadBatch {
            requests: vec![request],
        }
        .into_payload();
        let mut second = entry(2, 2, 1, 150, 300);
        second.payload = WorkloadBatch {
            requests: vec![request],
        }
        .into_payload();
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: first,
                },
                ObservedCommit {
                    replica: ReplicaId(1),
                    entry: second,
                },
            ],
            end_time: Time(1_000),
            ..Default::default()
        };
        assert_eq!(metrics.requests_committed(), 1, "exactly once");
        assert_eq!(
            metrics.client_latencies(),
            vec![Duration(50)],
            "the first commit's latency is the request's latency"
        );
        assert_eq!(metrics.duplicate_requests_suppressed(), 1);
    }

    #[test]
    fn requests_lost_balances_submitted_completed_and_pending() {
        let metrics = RunMetrics {
            requests_submitted: 100,
            requests_completed: 90,
            requests_pending: 4,
            ..Default::default()
        };
        assert_eq!(metrics.requests_lost(), 6);
        // Saturates rather than underflowing when bookkeeping is partial.
        let odd = RunMetrics {
            requests_submitted: 10,
            requests_completed: 8,
            requests_pending: 5,
            ..Default::default()
        };
        assert_eq!(odd.requests_lost(), 0);
    }

    #[test]
    fn per_client_series_and_load_summary() {
        use crate::workload::{Request, WorkloadBatch};
        let mk = |client: u16, id: u64, submitted: u64| Request {
            id,
            client,
            size: 100,
            submitted_at: Time(submitted),
        };
        // Client 0: two requests (latencies 100 and 200 ns); client 3: one
        // request (latency 400 ns).
        let mut e1 = entry(1, 1, 0, 0, 200);
        e1.payload = WorkloadBatch {
            requests: vec![mk(0, 1, 100), mk(0, 2, 0)],
        }
        .into_payload();
        let mut e2 = entry(2, 2, 1, 0, 500);
        e2.payload = WorkloadBatch {
            requests: vec![mk(3, 3, 100)],
        }
        .into_payload();
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: e1,
                },
                ObservedCommit {
                    replica: ReplicaId(1),
                    entry: e2,
                },
            ],
            requests_submitted: 5,
            end_time: Time(1_000_000_000), // 1 s
            ..Default::default()
        };
        let series = metrics.per_client_latencies();
        assert_eq!(series.len(), 2);
        assert_eq!(series[&0], vec![Duration(100), Duration(200)]);
        assert_eq!(series[&3], vec![Duration(400)]);
        assert!((metrics.goodput_rps() - 3.0).abs() < 1e-9);
        let summary = metrics.client_load_summary();
        assert_eq!(summary.requests_committed, 3);
        assert_eq!(summary.requests_submitted, 5);
        assert_eq!(summary.clients_observed, 2);
        assert!((summary.goodput_rps - 3.0).abs() < 1e-9);
        // Fairness spread: client 0 mean 150 ns, client 3 mean 400 ns.
        assert!((summary.min_client_mean_ms - 150e-6).abs() < 1e-12);
        assert!((summary.max_client_mean_ms - 400e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_load_summary_is_zeroed() {
        let summary = RunMetrics::default().client_load_summary();
        assert_eq!(summary.requests_committed, 0);
        assert_eq!(summary.clients_observed, 0);
        assert_eq!(summary.min_client_mean_ms, 0.0);
        assert_eq!(summary.max_client_mean_ms, 0.0);
        assert_eq!(summary.goodput_rps, 0.0);
    }

    #[test]
    fn explicit_commit_intervals_skip_implicit_flushes() {
        let mut implicit = entry(2, 2, 0, 0, 300);
        implicit.explicit = false;
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(1, 1, 0, 0, 100),
                },
                // Ancestor flush at the same instant as the next explicit
                // commit: must not contribute a zero-width interval.
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: implicit,
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(3, 3, 0, 0, 300),
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: entry(4, 4, 0, 0, 700),
                },
            ],
            end_time: Time(1_000),
            ..Default::default()
        };
        assert_eq!(
            metrics.explicit_commit_intervals(ReplicaId(0)),
            vec![Duration(200), Duration(400)]
        );
        let mean = metrics.mean_commit_interval_ms(ReplicaId(0));
        assert!((mean - 300.0e-6).abs() < 1e-12, "mean of 200 ns and 400 ns");
        assert_eq!(
            RunMetrics::default().mean_commit_interval_ms(ReplicaId(0)),
            0.0
        );
    }

    #[test]
    fn fast_path_share_counts_explicit_only() {
        let mut fast = entry(1, 1, 0, 0, 10);
        fast.fast = true;
        let mut implicit = entry(2, 2, 0, 0, 10);
        implicit.explicit = false;
        let slow = entry(3, 3, 0, 0, 10);
        let metrics = RunMetrics {
            commits: vec![
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: fast,
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: implicit,
                },
                ObservedCommit {
                    replica: ReplicaId(0),
                    entry: slow,
                },
            ],
            end_time: Time(1_000),
            ..Default::default()
        };
        assert!((metrics.fast_path_share(ReplicaId(0)) - 0.5).abs() < 1e-9);
    }
}
