//! Deterministic discrete-event WAN simulator for the Banyan reproduction.
//!
//! The paper evaluates on AWS `t3.large` instances spread over up to 19
//! datacenters (Fig. 5). This crate substitutes that testbed (**R1** in
//! `DESIGN.md`) with a simulator whose network model captures what the
//! paper measures: propagation delay between datacenters, egress-bandwidth
//! serialization for large blocks, jitter, FIFO links, and fail-stop
//! crashes.
//!
//! * [`topology`] — the three paper testbeds plus synthetic layouts;
//! * [`sim`] — the event loop driving [`banyan_types::engine::Engine`]s;
//! * [`faults`] — crash / partition / link-delay schedules;
//! * [`metrics`] — the paper's latency & throughput metrics, end-to-end
//!   client latency, goodput, request-loss accounting, and the global
//!   safety auditor;
//! * [`workload`] — the seeded client populations feeding the
//!   per-replica mempools (`banyan_mempool`, re-exported): an open-loop
//!   generator (fixed rate) and a closed-loop population (fixed windows,
//!   resubmit-on-commit), both with optional submit fan-out and
//!   per-request retry. [`sim::Simulation::enable_dissemination`] adds
//!   pending-request gossip and exactly-once commit dedup on top;
//!   [`sim::Simulation::enable_fanout_tree`] bounds that gossip to a
//!   seeded degree-`F` propagation tree with per-peer backpressure;
//! * [`cohort`] — the cohort-aggregated population: up to 10⁶ modeled
//!   clients in `O(cohorts)` memory, token-bucket pacing, a global
//!   admission cap, per-cohort latency reservoirs, and programmable
//!   [`LoadShape`]s (flash crowd, diurnal curve, regional outage with
//!   failover).
//!
//! # Examples
//!
//! Running engines (here: none) over the §9.3 topology:
//!
//! ```
//! use banyan_simnet::topology::Topology;
//!
//! let topo = Topology::four_global_19();
//! assert_eq!(topo.n(), 19);
//! // Δ is chosen from the worst modeled one-way delay.
//! let delta = topo.max_one_way();
//! assert!(delta.as_millis_f64() > 10.0);
//! ```

#![warn(missing_docs)]

pub mod cohort;
pub mod faults;
pub mod metrics;
pub mod sim;
pub mod topology;
pub mod workload;

pub use cohort::{CohortStats, CohortWorkload, LoadShape};
pub use faults::{Fault, FaultPlan};
pub use metrics::{ClientLoadSummary, LatencyStats, ObservedCommit, RunMetrics, SafetyAuditor};
pub use sim::{CryptoCost, SimConfig, Simulation};
pub use topology::{Region, Topology, AWS_REGIONS};
pub use workload::{
    ClientWorkload, ClosedLoopWorkload, Mempool, MempoolSource, PushOutcome, Request,
    SharedMempool, WorkloadBatch,
};
