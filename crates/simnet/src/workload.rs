//! Client workload: mempools, request batching, and an open-loop
//! generator.
//!
//! The paper's experiments use leader-minted synthetic payloads (§9.2);
//! this module opens the closed-vs-open-loop scenario space by driving the
//! same engines from a *client request stream* instead:
//!
//! * [`Mempool`] — a deterministic FIFO of pending [`Request`]s with
//!   capacity eviction and duplicate-id rejection, shared (via
//!   [`SharedMempool`]) between the replica's engine and the simulator;
//! * [`MempoolSource`] — a [`ProposalSource`] that drains the mempool into
//!   a [`WorkloadBatch`] payload whenever the engine proposes;
//! * [`WorkloadBatch`] — the wire encoding of a batch: request records
//!   followed by zero padding up to the batch's nominal byte size, so the
//!   bandwidth model charges what a real deployment would ship. Batches
//!   self-identify with a magic prefix, which is how the metrics pipeline
//!   recovers submit timestamps from committed payloads;
//! * [`ClientWorkload`] — a seeded open-loop generator (fixed
//!   requests/sec, fixed request size, seeded replica targeting) the
//!   simulator drives via its own event queue;
//! * [`ClosedLoopWorkload`] — a seeded closed-loop client population
//!   (`clients × window` outstanding requests) that observes completions
//!   through the [`App`] delivery path and resubmits after an optional
//!   think time. Open loop fixes the *offered rate* and lets latency blow
//!   up under overload; closed loop fixes the *population* and lets the
//!   rate self-regulate, which is what saturation (throughput-vs-latency)
//!   sweeps need.
//!
//! Everything is a deterministic function of seeds and virtual time:
//! replays of a seeded run reproduce the same requests, batches and
//! latencies bit-for-bit (asserted in `crates/bench/tests/determinism.rs`).

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banyan_types::app::{App, ProposalSource};
use banyan_types::engine::CommitEntry;
use banyan_types::ids::{ReplicaId, Round};
use banyan_types::payload::Payload;
use banyan_types::time::{Duration, Time};

/// Magic prefix identifying a [`WorkloadBatch`] payload.
const BATCH_MAGIC: &[u8; 8] = b"BanyanWB";

/// Default mempool capacity (pending requests per replica).
pub const DEFAULT_MEMPOOL_CAPACITY: usize = 65_536;

/// Default maximum requests drained into one block.
pub const DEFAULT_MAX_BATCH: usize = 4_096;

/// Default maximum *nominal bytes* drained into one block (2 MB — twice
/// the largest block size the paper evaluates), so large requests cannot
/// inflate a single batch to gigabytes regardless of the record cap.
pub const DEFAULT_MAX_BATCH_BYTES: u64 = 2_000_000;

/// One client request: an opaque `size`-byte blob identified by `id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Globally unique request id (dedup key).
    pub id: u64,
    /// Submitting client (for future per-client fairness metrics).
    pub client: u16,
    /// Nominal request size in bytes (what the client would ship).
    pub size: u64,
    /// When the client submitted the request (virtual time).
    pub submitted_at: Time,
}

/// Outcome of a [`Mempool::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted; nothing evicted.
    Accepted,
    /// Accepted, and the oldest pending request was evicted to make room.
    AcceptedEvicting(u64),
    /// Rejected: a request with the same id is already pending.
    Duplicate,
}

/// A deterministic FIFO mempool with bounded capacity.
///
/// Requests are served strictly in submission order. A request whose id is
/// already pending is rejected ([`PushOutcome::Duplicate`]); once drained
/// into a block the id may be resubmitted. When the pool is full, pushing
/// a new request evicts the *oldest* pending one (open-loop clients keep
/// the freshest work).
#[derive(Debug)]
pub struct Mempool {
    capacity: usize,
    queue: VecDeque<Request>,
    pending_ids: HashSet<u64>,
    accepted: u64,
    evicted: u64,
    duplicates: u64,
}

impl Mempool {
    /// An empty mempool holding at most `capacity` pending requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            capacity,
            queue: VecDeque::new(),
            pending_ids: HashSet::new(),
            accepted: 0,
            evicted: 0,
            duplicates: 0,
        }
    }

    /// A new mempool behind the `Arc<Mutex<_>>` the simulator and the
    /// engine's [`MempoolSource`] share.
    pub fn shared(capacity: usize) -> SharedMempool {
        Arc::new(Mutex::new(Mempool::new(capacity)))
    }

    /// Submits one request. FIFO position is acquisition order.
    pub fn push(&mut self, req: Request) -> PushOutcome {
        if !self.pending_ids.insert(req.id) {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        self.accepted += 1;
        self.queue.push_back(req);
        if self.queue.len() > self.capacity {
            let oldest = self.queue.pop_front().expect("over capacity");
            self.pending_ids.remove(&oldest.id);
            self.evicted += 1;
            return PushOutcome::AcceptedEvicting(oldest.id);
        }
        PushOutcome::Accepted
    }

    /// Removes and returns up to `max` requests, oldest first.
    pub fn drain(&mut self, max: usize) -> Vec<Request> {
        let take = max.min(self.queue.len());
        let drained: Vec<Request> = self.queue.drain(..take).collect();
        for req in &drained {
            self.pending_ids.remove(&req.id);
        }
        drained
    }

    /// Removes and returns requests, oldest first, stopping before
    /// `max_records` is exceeded and before the *nominal* byte total
    /// (the sum of [`Request::size`]) would exceed `max_bytes`. When
    /// `max_records > 0`, at least one request is taken when any is
    /// pending — a single oversized request still ships rather than
    /// wedging the pool ([`MempoolSource`] rejects a zero record cap at
    /// construction for the same reason).
    pub fn drain_bounded(&mut self, max_records: usize, max_bytes: u64) -> Vec<Request> {
        let mut take = 0;
        let mut bytes = 0u64;
        for req in self.queue.iter().take(max_records) {
            let next = bytes.saturating_add(req.size);
            if take > 0 && next > max_bytes {
                break;
            }
            bytes = next;
            take += 1;
        }
        self.drain(take)
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests accepted so far (including later-evicted ones).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Requests evicted by capacity pressure so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Requests rejected as duplicates so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

/// A mempool shared between the simulator (producer side) and an engine's
/// [`MempoolSource`] (consumer side).
pub type SharedMempool = Arc<Mutex<Mempool>>;

/// The requests carried by one block payload, recoverable from the
/// committed payload bytes.
///
/// # Wire encoding
///
/// ```text
/// "BanyanWB"             8-byte magic prefix (self-identification)
/// count: u32 LE          number of request records
/// count × 26-byte record, each little-endian:
///   id: u64  client: u16  size: u64  submitted_at: u64 (ns)
/// zero padding           up to the batch's nominal size
/// ```
///
/// The nominal size is the sum of request sizes, so the simulator's
/// bandwidth model charges what shipping the real request bytes would
/// cost. Payloads without the magic prefix (synthetic payloads, empty
/// blocks, foreign inline content) [`decode`](Self::decode) to `None`;
/// a truncated or corrupt batch is rejected, never a panic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadBatch {
    /// The batched requests, in mempool (FIFO) order.
    pub requests: Vec<Request>,
}

impl WorkloadBatch {
    /// Bytes of one encoded request record.
    const RECORD: usize = 8 + 2 + 8 + 8;

    /// Nominal batch size: the sum of request sizes.
    pub fn nominal_size(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Encodes the batch as an inline payload (see the type docs).
    pub fn into_payload(self) -> Payload {
        let header = BATCH_MAGIC.len() + 4 + self.requests.len() * Self::RECORD;
        let total = (self.nominal_size() as usize).max(header);
        let mut bytes = Vec::with_capacity(total);
        bytes.extend_from_slice(BATCH_MAGIC);
        bytes.extend_from_slice(&(self.requests.len() as u32).to_le_bytes());
        for req in &self.requests {
            bytes.extend_from_slice(&req.id.to_le_bytes());
            bytes.extend_from_slice(&req.client.to_le_bytes());
            bytes.extend_from_slice(&req.size.to_le_bytes());
            bytes.extend_from_slice(&req.submitted_at.as_nanos().to_le_bytes());
        }
        bytes.resize(total, 0);
        Payload::Inline(bytes)
    }

    /// Decodes a batch from a committed payload. Returns `None` for
    /// payloads that are not workload batches (synthetic payloads, empty
    /// blocks, foreign inline content).
    pub fn decode(payload: &Payload) -> Option<WorkloadBatch> {
        let Payload::Inline(bytes) = payload else {
            return None;
        };
        let rest = bytes.strip_prefix(BATCH_MAGIC.as_slice())?;
        let count = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
        // A corrupt count must fail the length check below, not reserve
        // gigabytes here: never trust it beyond what the bytes can hold.
        if count > (rest.len() - 4) / Self::RECORD {
            return None;
        }
        let mut requests = Vec::with_capacity(count);
        let mut cursor = rest.get(4..)?;
        for _ in 0..count {
            let record = cursor.get(..Self::RECORD)?;
            requests.push(Request {
                id: u64::from_le_bytes(record[0..8].try_into().ok()?),
                client: u16::from_le_bytes(record[8..10].try_into().ok()?),
                size: u64::from_le_bytes(record[10..18].try_into().ok()?),
                submitted_at: Time(u64::from_le_bytes(record[18..26].try_into().ok()?)),
            });
            cursor = &cursor[Self::RECORD..];
        }
        Some(WorkloadBatch { requests })
    }
}

/// A [`ProposalSource`] that drains a [`SharedMempool`] into one
/// [`WorkloadBatch`] payload per proposal. An empty mempool yields an
/// empty payload (the chain keeps moving; blocks just carry no work).
///
/// Each batch is bounded two ways: at most `max_batch` request records
/// *and* at most [`max_bytes`](Self::with_max_bytes) nominal bytes (the
/// sum of request sizes — what the bandwidth model will charge for the
/// block). Without the byte bound, large requests would let the record
/// cap admit multi-gigabyte blocks.
///
/// **Known limitation:** draining is destructive. A request batched into
/// a proposal that never finalizes (a backup proposal that loses to the
/// leader's, or an equivocator's second block) is gone — there is no
/// requeue path, because the engine cannot know at drain time whether its
/// block will win. The gap shows up as `requests_submitted −
/// requests_committed` in `RunMetrics`; request re-gossip / resubmission
/// is a ROADMAP follow-up.
#[derive(Debug)]
pub struct MempoolSource {
    mempool: SharedMempool,
    max_batch: usize,
    max_bytes: u64,
}

impl MempoolSource {
    /// A source draining `mempool`, at most `max_batch` requests and
    /// [`DEFAULT_MAX_BATCH_BYTES`] nominal bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero (every block would be empty forever
    /// while requests pile up in the pool).
    pub fn new(mempool: SharedMempool, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch record cap must be positive");
        MempoolSource {
            mempool,
            max_batch,
            max_bytes: DEFAULT_MAX_BATCH_BYTES,
        }
    }

    /// Overrides the nominal byte bound per batch.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }
}

impl ProposalSource for MempoolSource {
    fn next_payload(&mut self, _round: Round, _now: Time) -> Payload {
        let requests = self
            .mempool
            .lock()
            .expect("mempool lock")
            .drain_bounded(self.max_batch, self.max_bytes);
        if requests.is_empty() {
            Payload::empty()
        } else {
            WorkloadBatch { requests }.into_payload()
        }
    }
}

/// A seeded open-loop client population: `rate` requests per second of
/// `request_size` bytes each, submitted to a seeded-random replica's
/// mempool regardless of how fast the cluster commits (open loop — the
/// defining contrast to a closed loop that waits for completions).
pub struct ClientWorkload {
    interval: Duration,
    request_size: u64,
    mempools: Vec<SharedMempool>,
    rng: SmallRng,
    next_id: u64,
}

impl std::fmt::Debug for ClientWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientWorkload")
            .field("interval", &self.interval)
            .field("request_size", &self.request_size)
            .field("replicas", &self.mempools.len())
            .finish_non_exhaustive()
    }
}

impl ClientWorkload {
    /// An open-loop workload: `rate` requests/sec of `request_size` bytes,
    /// target replica drawn per request from an RNG seeded with `seed`,
    /// feeding `mempools[i]` for replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero, exceeds 10⁹/s (the inter-arrival interval
    /// would truncate to zero virtual nanoseconds and the tick loop would
    /// never advance time), or `mempools` is empty.
    pub fn open_loop(
        rate: u64,
        request_size: u64,
        seed: u64,
        mempools: Vec<SharedMempool>,
    ) -> Self {
        assert!(rate > 0, "open-loop rate must be positive");
        assert!(
            rate <= 1_000_000_000,
            "open-loop rate above 1e9/s truncates the tick interval to zero"
        );
        assert!(!mempools.is_empty(), "need at least one replica mempool");
        ClientWorkload {
            interval: Duration(1_000_000_000 / rate),
            request_size,
            mempools,
            rng: SmallRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Time between consecutive submissions.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Submits the next request at `now`, returning the target replica.
    /// Called by the simulator on each client tick.
    pub fn submit_next(&mut self, now: Time) -> ReplicaId {
        let target = self.rng.gen_range(0..self.mempools.len());
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            client: (self.next_id % u16::MAX as u64) as u16,
            size: self.request_size,
            submitted_at: now,
        };
        self.mempools[target]
            .lock()
            .expect("mempool lock")
            .push(req);
        ReplicaId(target as u16)
    }
}

/// A seeded closed-loop client population.
///
/// `clients` clients each keep a *window* of `window` outstanding
/// requests: the population is primed with `clients × window` requests,
/// and a client only submits a replacement once one of its requests is
/// observed committed — so the offered rate self-regulates to what the
/// cluster can absorb, which is the defining contrast to the open-loop
/// [`ClientWorkload`]. Committed work is observed through the ordinary
/// [`App`] delivery path: the workload *is* an `App`, and the simulator
/// feeds it every finalized block. Records recovered from a delivered
/// [`WorkloadBatch`] complete the matching in-flight requests (first
/// delivery wins; later replicas' deliveries of the same block are
/// ignored), and each completion schedules one resubmission `think_time`
/// later — the simulator turns those into `ClientTick` events, which is
/// the only thing ticks are used for in a closed loop.
///
/// Determinism: replica targeting comes from an RNG seeded with `seed`,
/// completions arrive in the simulator's deterministic commit order, and
/// resubmissions fire at exact virtual times, so a seeded run reproduces
/// bit-for-bit.
///
/// Invariant: at most `clients × window` requests are ever uncommitted
/// ("in flight"); a request lost to a never-finalized proposal permanently
/// occupies its window slot (see [`MempoolSource`] on destructive drains),
/// which mirrors a real closed-loop client that never gets its response.
pub struct ClosedLoopWorkload {
    window: u32,
    think_time: Duration,
    request_size: u64,
    mempools: Vec<SharedMempool>,
    rng: SmallRng,
    next_id: u64,
    clients: u16,
    /// Request ids submitted and not yet observed committed.
    in_flight: HashSet<u64>,
    /// Clients whose freed slot is waiting for its think-time tick, in
    /// completion order.
    resume_queue: VecDeque<u16>,
    /// Tick times produced by completions and not yet scheduled.
    pending_ticks: Vec<Time>,
    submitted: u64,
    completed: u64,
}

impl std::fmt::Debug for ClosedLoopWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoopWorkload")
            .field("clients", &self.clients)
            .field("window", &self.window)
            .field("think_time", &self.think_time)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl ClosedLoopWorkload {
    /// A population of `clients` clients, each with `window` outstanding
    /// `request_size`-byte requests, pausing `think_time` between a
    /// completion and the replacement submission. Targets are drawn per
    /// request from an RNG seeded with `seed`; `mempools[i]` feeds
    /// replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `window` is zero or `mempools` is empty.
    pub fn new(
        clients: u16,
        window: u32,
        think_time: Duration,
        request_size: u64,
        seed: u64,
        mempools: Vec<SharedMempool>,
    ) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(window > 0, "window must be positive");
        assert!(!mempools.is_empty(), "need at least one replica mempool");
        ClosedLoopWorkload {
            window,
            think_time,
            request_size,
            mempools,
            rng: SmallRng::seed_from_u64(seed),
            next_id: 0,
            clients,
            in_flight: HashSet::new(),
            resume_queue: VecDeque::new(),
            pending_ticks: Vec::new(),
            submitted: 0,
            completed: 0,
        }
    }

    /// Number of clients in the population.
    pub fn clients(&self) -> u16 {
        self.clients
    }

    /// Outstanding-request window per client.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The population's in-flight cap, `clients × window`.
    pub fn max_in_flight(&self) -> u64 {
        self.clients as u64 * self.window as u64
    }

    /// Requests currently uncommitted (includes any lost to
    /// never-finalized proposals).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Requests submitted so far (initial windows + resubmissions).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests observed committed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Submits the full initial window of every client at `now`,
    /// returning how many requests were submitted. The simulator calls
    /// this once when the workload is attached.
    pub fn prime(&mut self, now: Time) -> u64 {
        let before = self.submitted;
        for client in 0..self.clients {
            for _ in 0..self.window {
                self.submit_for(client, now);
            }
        }
        self.submitted - before
    }

    /// Drains the tick times produced by completions since the last call;
    /// the simulator schedules one `ClientTick` per entry.
    pub fn take_pending_ticks(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.pending_ticks)
    }

    /// Handles one think-time tick at `now`: the longest-waiting freed
    /// slot's client submits its replacement request. Returns the target
    /// replica, or `None` if no slot is waiting.
    pub fn resubmit_next(&mut self, now: Time) -> Option<ReplicaId> {
        let client = self.resume_queue.pop_front()?;
        Some(self.submit_for(client, now))
    }

    fn submit_for(&mut self, client: u16, now: Time) -> ReplicaId {
        let target = self.rng.gen_range(0..self.mempools.len());
        self.next_id += 1;
        self.submitted += 1;
        self.in_flight.insert(self.next_id);
        let req = Request {
            id: self.next_id,
            client,
            size: self.request_size,
            submitted_at: now,
        };
        self.mempools[target]
            .lock()
            .expect("mempool lock")
            .push(req);
        ReplicaId(target as u16)
    }
}

impl App for ClosedLoopWorkload {
    /// The completion hook: decodes the delivered block's batch (if any)
    /// and completes every record still in flight, scheduling each
    /// client's resubmission one think time after the commit.
    fn deliver(&mut self, entry: &CommitEntry) {
        let Some(batch) = WorkloadBatch::decode(&entry.payload) else {
            return;
        };
        for req in &batch.requests {
            if self.in_flight.remove(&req.id) {
                self.completed += 1;
                self.resume_queue.push_back(req.client);
                self.pending_ticks
                    .push(entry.committed_at + self.think_time);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, at: u64) -> Request {
        Request {
            id,
            client: (id % 7) as u16,
            size: 100,
            submitted_at: Time(at),
        }
    }

    #[test]
    fn mempool_serves_fifo_order() {
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            assert_eq!(mp.push(req(id, id)), PushOutcome::Accepted);
        }
        let drained = mp.drain(3);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        let rest = mp.drain(usize::MAX);
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), [4, 5]);
        assert!(mp.is_empty());
    }

    #[test]
    fn mempool_rejects_pending_duplicates_only() {
        let mut mp = Mempool::new(10);
        assert_eq!(mp.push(req(1, 0)), PushOutcome::Accepted);
        assert_eq!(mp.push(req(1, 1)), PushOutcome::Duplicate);
        assert_eq!(mp.len(), 1);
        assert_eq!(mp.duplicates(), 1);
        // Once drained, the id may be resubmitted (e.g. a client retry).
        mp.drain(1);
        assert_eq!(mp.push(req(1, 2)), PushOutcome::Accepted);
    }

    #[test]
    fn mempool_capacity_evicts_oldest() {
        let mut mp = Mempool::new(3);
        for id in 1..=3 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.push(req(4, 4)), PushOutcome::AcceptedEvicting(1));
        assert_eq!(mp.len(), 3);
        assert_eq!(mp.evicted(), 1);
        let ids: Vec<u64> = mp.drain(usize::MAX).iter().map(|r| r.id).collect();
        assert_eq!(ids, [2, 3, 4]);
        // The evicted id is free again.
        assert_eq!(mp.push(req(1, 9)), PushOutcome::Accepted);
    }

    #[test]
    fn batch_roundtrips_and_pads_to_nominal_size() {
        let batch = WorkloadBatch {
            requests: vec![req(7, 100), req(8, 250)],
        };
        assert_eq!(batch.nominal_size(), 200);
        let payload = batch.clone().into_payload();
        // Padded to the nominal byte size: bandwidth is charged as if the
        // real request bytes were on the wire.
        assert_eq!(payload.len(), 200);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn tiny_batches_keep_their_header() {
        // 2 one-byte requests: the header exceeds the nominal size, so the
        // payload grows to fit the records.
        let batch = WorkloadBatch {
            requests: vec![
                Request {
                    id: 1,
                    client: 0,
                    size: 1,
                    submitted_at: Time(5),
                },
                Request {
                    id: 2,
                    client: 1,
                    size: 1,
                    submitted_at: Time(6),
                },
            ],
        };
        let payload = batch.clone().into_payload();
        assert!(payload.len() > 2);
        assert_eq!(WorkloadBatch::decode(&payload), Some(batch));
    }

    #[test]
    fn non_batch_payloads_decode_to_none() {
        assert_eq!(WorkloadBatch::decode(&Payload::empty()), None);
        assert_eq!(WorkloadBatch::decode(&Payload::synthetic(1_000, 3)), None);
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(b"not a batch".to_vec())),
            None
        );
        // Truncated batch (magic but no count) is rejected, not a panic.
        assert_eq!(
            WorkloadBatch::decode(&Payload::Inline(BATCH_MAGIC.to_vec())),
            None
        );
    }

    #[test]
    fn mempool_source_drains_in_batches() {
        use banyan_types::app::ProposalSource;
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=5 {
                mp.push(req(id, id));
            }
        }
        let mut src = MempoolSource::new(shared.clone(), 3);
        let first = src.next_payload(Round(1), Time(10));
        let batch = WorkloadBatch::decode(&first).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let second = src.next_payload(Round(2), Time(20));
        let batch = WorkloadBatch::decode(&second).expect("batch payload");
        assert_eq!(
            batch.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            [4, 5]
        );
        // Empty mempool → empty payload, not a stall.
        assert!(src.next_payload(Round(3), Time(30)).is_empty());
    }

    #[test]
    fn drain_bounded_enforces_nominal_byte_cap() {
        // Regression: with large requests, the record cap alone admitted
        // arbitrarily many bytes per batch.
        let mut mp = Mempool::new(100);
        for id in 1..=10 {
            mp.push(Request {
                id,
                client: 0,
                size: 1_000_000,
                submitted_at: Time(id),
            });
        }
        let batch = mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES);
        assert_eq!(
            batch.len(),
            2,
            "2 MB cap must stop a 1 MB-request drain at two records"
        );
        // An oversized single request still ships (no wedge).
        let mut mp = Mempool::new(10);
        mp.push(Request {
            id: 1,
            client: 0,
            size: 10_000_000,
            submitted_at: Time(1),
        });
        assert_eq!(mp.drain_bounded(4_096, DEFAULT_MAX_BATCH_BYTES).len(), 1);
        // The record cap still applies to small requests.
        let mut mp = Mempool::new(10);
        for id in 1..=5 {
            mp.push(req(id, id));
        }
        assert_eq!(mp.drain_bounded(3, u64::MAX).len(), 3);
    }

    #[test]
    fn mempool_source_honors_byte_cap() {
        use banyan_types::app::ProposalSource;
        let shared = Mempool::shared(100);
        {
            let mut mp = shared.lock().unwrap();
            for id in 1..=6 {
                mp.push(Request {
                    id,
                    client: 0,
                    size: 400,
                    submitted_at: Time(id),
                });
            }
        }
        let mut src = MempoolSource::new(shared, 4_096).with_max_bytes(1_000);
        let batch = WorkloadBatch::decode(&src.next_payload(Round(1), Time(1))).unwrap();
        assert_eq!(batch.requests.len(), 2, "400+400 fits, +400 would not");
        assert!(batch.nominal_size() <= 1_000);
    }

    fn commit_of(batch: WorkloadBatch, at: u64) -> CommitEntry {
        use banyan_types::ids::BlockHash;
        CommitEntry {
            round: Round(1),
            block: BlockHash::ZERO,
            proposer: ReplicaId(0),
            payload: batch.into_payload(),
            proposed_at: Time::ZERO,
            committed_at: Time(at),
            fast: false,
            explicit: true,
        }
    }

    #[test]
    fn closed_loop_primes_full_windows_and_caps_in_flight() {
        let mempools: Vec<SharedMempool> = (0..3).map(|_| Mempool::shared(1_000)).collect();
        let mut w = ClosedLoopWorkload::new(5, 4, Duration::ZERO, 100, 1, mempools.clone());
        assert_eq!(w.prime(Time::ZERO), 20);
        assert_eq!(w.in_flight(), 20);
        assert_eq!(w.max_in_flight(), 20);
        let pending: usize = mempools.iter().map(|m| m.lock().unwrap().len()).sum();
        assert_eq!(pending, 20, "every primed request lands in a mempool");
        // No completions yet, so no ticks and nothing to resubmit.
        assert!(w.take_pending_ticks().is_empty());
        assert!(w.resubmit_next(Time(1)).is_none());
    }

    #[test]
    fn closed_loop_completion_drives_resubmission() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(1_000)];
        let think = Duration::from_millis(5);
        let mut w = ClosedLoopWorkload::new(2, 1, think, 100, 1, mempools.clone());
        w.prime(Time::ZERO);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(drained.len(), 2);

        // Deliver a batch committing the first request only.
        let batch = WorkloadBatch {
            requests: vec![drained[0]],
        };
        w.deliver(&commit_of(batch.clone(), 1_000));
        assert_eq!(w.completed(), 1);
        assert_eq!(w.in_flight(), 1);
        let ticks = w.take_pending_ticks();
        assert_eq!(ticks, vec![Time(1_000) + think], "one tick, think later");

        // Re-delivery of the same batch (another replica committing the
        // same block) completes nothing twice.
        w.deliver(&commit_of(batch, 2_000));
        assert_eq!(w.completed(), 1);
        assert!(w.take_pending_ticks().is_empty());

        // The tick resubmits for the completed request's client; the
        // window cap is never exceeded.
        let at = ticks[0];
        assert!(w.resubmit_next(at).is_some());
        assert_eq!(w.in_flight(), 2);
        assert_eq!(w.submitted(), 3);
        assert!(w.in_flight() as u64 <= w.max_in_flight());
        assert!(w.resubmit_next(at).is_none(), "one tick, one resubmit");
    }

    #[test]
    fn closed_loop_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<usize> {
            let mempools: Vec<SharedMempool> = (0..4).map(|_| Mempool::shared(1_000)).collect();
            let mut w = ClosedLoopWorkload::new(8, 2, Duration::ZERO, 64, seed, mempools.clone());
            w.prime(Time::ZERO);
            mempools.iter().map(|m| m.lock().unwrap().len()).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should retarget");
    }

    #[test]
    fn open_loop_generator_is_seed_deterministic() {
        let run = |seed: u64| -> (Vec<u16>, Vec<usize>) {
            let mempools: Vec<SharedMempool> = (0..4).map(|_| Mempool::shared(100)).collect();
            let mut w = ClientWorkload::open_loop(1_000, 64, seed, mempools.clone());
            let targets: Vec<u16> = (0..20)
                .map(|k| w.submit_next(Time(k * w.interval().as_nanos())).0)
                .collect();
            let lens = mempools.iter().map(|m| m.lock().unwrap().len()).collect();
            (targets, lens)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should retarget");
    }
}
