//! Client workloads: the seeded open- and closed-loop populations that
//! feed the request-dissemination layer.
//!
//! The mempool itself — FIFO pools, batch encoding, gossip outboxes and
//! the exactly-once dedup rule — lives in [`banyan_mempool`] (re-exported
//! here for convenience); this module owns the *clients*:
//!
//! * [`ClientWorkload`] — a seeded open-loop generator (fixed
//!   requests/sec, fixed request size, seeded replica targeting) the
//!   simulator drives via its own event queue;
//! * [`ClosedLoopWorkload`] — a seeded closed-loop client population
//!   (`clients × window` outstanding requests) that observes completions
//!   through the [`App`] delivery path and resubmits after an optional
//!   think time. Open loop fixes the *offered rate* and lets latency blow
//!   up under overload; closed loop fixes the *population* and lets the
//!   rate self-regulate, which is what saturation (throughput-vs-latency)
//!   sweeps need.
//!
//! Both populations speak the dissemination layer's client side:
//!
//! * **submit fan-out** ([`ClientWorkload::with_fanout`],
//!   [`ClosedLoopWorkload::with_fanout`]) — each request is submitted to
//!   `k` replicas' pools (the sampled primary plus its successors), the
//!   classic submit-to-`f+1` defense against an unresponsive or censoring
//!   replica;
//! * **retry** ([`ClientWorkload::with_retry`],
//!   [`ClosedLoopWorkload::with_retry`]) — every submission arms a
//!   per-request retransmission deadline; if the request has not been
//!   observed committed by then (completions arrive through the same
//!   [`App`] delivery path the closed loop uses), the client resubmits it
//!   — with its *original* submit timestamp, so end-to-end latency is
//!   measured from first submission — and re-arms. Requests drained into
//!   never-finalized proposals thus re-enter the system instead of being
//!   lost (or, in a closed loop, leaking window slots forever).
//!
//! Everything is a deterministic function of seeds and virtual time:
//! replays of a seeded run reproduce the same requests, batches, retries
//! and latencies bit-for-bit (asserted in
//! `crates/bench/tests/determinism.rs`). With retry and fan-out disabled
//! (the default), the submission stream — including every RNG draw — is
//! bit-identical to the historical single-replica, no-retry behavior.

use std::collections::{HashMap, VecDeque};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banyan_types::app::App;
use banyan_types::engine::CommitEntry;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

pub use banyan_mempool::{
    Mempool, MempoolSource, PushOutcome, Request, SharedMempool, WorkloadBatch, DEFAULT_MAX_BATCH,
    DEFAULT_MAX_BATCH_BYTES, DEFAULT_MEMPOOL_CAPACITY,
};

/// Per-request retransmission bookkeeping shared by both populations.
///
/// Deadlines are kept in a FIFO: with a constant timeout, re-armed
/// deadlines are always ≥ every queued one, so the queue stays sorted
/// without a heap and retry processing is deterministic.
#[derive(Debug, Default)]
struct RetryState {
    timeout: Option<Duration>,
    /// `(deadline, id)` in nondecreasing deadline order.
    deadlines: VecDeque<(Time, u64)>,
    /// Deadlines armed since the simulator last collected retry ticks.
    pending_ticks: Vec<Time>,
    retries: u64,
}

impl RetryState {
    fn arm(&mut self, id: u64, now: Time) {
        if let Some(timeout) = self.timeout {
            let at = now + timeout;
            self.deadlines.push_back((at, id));
            self.pending_ticks.push(at);
        }
    }

    fn take_pending_ticks(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.pending_ticks)
    }

    /// Allocation-free drain: clears `out` and swaps it with the pending
    /// buffer, so the two vectors recycle their capacity between calls.
    fn take_pending_ticks_into(&mut self, out: &mut Vec<Time>) {
        out.clear();
        std::mem::swap(&mut self.pending_ticks, out);
    }
}

/// Pushes `req` into `fanout` pools: the sampled `primary` plus its
/// successors in replica order (deterministic — no extra RNG draws, and
/// with `fanout == 1` exactly the historical single-target behavior).
fn push_fanout(mempools: &[SharedMempool], fanout: usize, primary: usize, req: Request) {
    let n = mempools.len();
    for k in 0..fanout.clamp(1, n) {
        mempools[(primary + k) % n]
            .lock()
            .expect("mempool lock")
            .push(req);
    }
}

/// A seeded open-loop client population: `rate` requests per second of
/// `request_size` bytes each, submitted to a seeded-random replica's
/// mempool regardless of how fast the cluster commits (open loop — the
/// defining contrast to a closed loop that waits for completions).
pub struct ClientWorkload {
    interval: Duration,
    request_size: u64,
    mempools: Vec<SharedMempool>,
    rng: SmallRng,
    next_id: u64,
    fanout: usize,
    retry: RetryState,
    /// Submitted-and-not-yet-committed requests (completion is observed
    /// through the `App` delivery path; retries consult this map so a
    /// committed request is never retransmitted).
    outstanding: HashMap<u64, Request>,
    completed: u64,
    frozen: bool,
}

impl std::fmt::Debug for ClientWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientWorkload")
            .field("interval", &self.interval)
            .field("request_size", &self.request_size)
            .field("replicas", &self.mempools.len())
            .field("fanout", &self.fanout)
            .field("retry", &self.retry.timeout)
            .finish_non_exhaustive()
    }
}

impl ClientWorkload {
    /// An open-loop workload: `rate` requests/sec of `request_size` bytes,
    /// target replica drawn per request from an RNG seeded with `seed`,
    /// feeding `mempools[i]` for replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero, exceeds 10⁹/s (the inter-arrival interval
    /// would truncate to zero virtual nanoseconds and the tick loop would
    /// never advance time), or `mempools` is empty.
    pub fn open_loop(
        rate: u64,
        request_size: u64,
        seed: u64,
        mempools: Vec<SharedMempool>,
    ) -> Self {
        assert!(rate > 0, "open-loop rate must be positive");
        assert!(
            rate <= 1_000_000_000,
            "open-loop rate above 1e9/s truncates the tick interval to zero"
        );
        assert!(!mempools.is_empty(), "need at least one replica mempool");
        ClientWorkload {
            interval: Duration(1_000_000_000 / rate),
            request_size,
            mempools,
            rng: SmallRng::seed_from_u64(seed),
            next_id: 0,
            fanout: 1,
            retry: RetryState::default(),
            outstanding: HashMap::new(),
            completed: 0,
            frozen: false,
        }
    }

    /// Builder-style: enables per-request retransmission with the given
    /// timeout. Retrying clients observe completions through the [`App`]
    /// delivery path (the simulator feeds them every replica's commits).
    pub fn with_retry(mut self, timeout: Duration) -> Self {
        self.retry.timeout = Some(timeout);
        self
    }

    /// Builder-style: submits every request to `fanout` replicas (clamped
    /// to the cluster size) instead of one.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        self.fanout = fanout;
        self
    }

    /// Time between consecutive submissions.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The per-replica pools this population feeds.
    pub fn mempools(&self) -> &[SharedMempool] {
        &self.mempools
    }

    /// *Unique* requests currently pending in at least one pool (with
    /// gossip or fan-out a request can have live copies in several).
    pub fn pending_in_pools(&self) -> u64 {
        let mut ids = std::collections::HashSet::new();
        for pool in &self.mempools {
            ids.extend(pool.lock().expect("mempool lock").pending_ids());
        }
        ids.len() as u64
    }

    /// Requests observed committed so far (first delivery per id, from
    /// any replica).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retransmissions performed so far.
    pub fn retries(&self) -> u64 {
        self.retry.retries
    }

    /// True once [`freeze`](Self::freeze) was called.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Stops new submissions (retries of already-submitted requests keep
    /// firing). Drivers call this to drain the system at the end of a
    /// measured run.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Submits the next request at `now`, returning the primary target
    /// replica. Called by the simulator on each client tick.
    pub fn submit_next(&mut self, now: Time) -> ReplicaId {
        let target = self.rng.gen_range(0..self.mempools.len());
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            client: (self.next_id % u16::MAX as u64) as u16,
            size: self.request_size,
            submitted_at: now,
        };
        push_fanout(&self.mempools, self.fanout, target, req);
        self.outstanding.insert(req.id, req);
        self.retry.arm(req.id, now);
        ReplicaId(target as u16)
    }

    /// Drains the retry deadlines armed since the last call; the
    /// simulator schedules one retry tick per entry.
    pub fn take_pending_retry_ticks(&mut self) -> Vec<Time> {
        self.retry.take_pending_ticks()
    }

    /// Allocation-free [`take_pending_retry_ticks`](Self::take_pending_retry_ticks):
    /// clears `out` and swaps it with the pending buffer (capacity
    /// recycles between calls — hot at large populations).
    pub fn take_pending_retry_ticks_into(&mut self, out: &mut Vec<Time>) {
        self.retry.take_pending_ticks_into(out);
    }

    /// Handles one retry tick at `now`: every due, still-uncommitted
    /// request is resubmitted (original id and submit timestamp, fresh
    /// seeded target) and re-armed. Returns how many were retried.
    pub fn handle_retry_tick(&mut self, now: Time) -> u64 {
        let mut retried = 0;
        while let Some(&(at, id)) = self.retry.deadlines.front() {
            if at > now {
                break;
            }
            self.retry.deadlines.pop_front();
            if let Some(req) = self.outstanding.get(&id).copied() {
                let target = self.rng.gen_range(0..self.mempools.len());
                push_fanout(&self.mempools, self.fanout, target, req);
                self.retry.retries += 1;
                self.retry.arm(id, now);
                retried += 1;
            }
        }
        retried
    }
}

impl App for ClientWorkload {
    /// Completion hook: decodes the delivered block's batch and settles
    /// every record still outstanding (first delivery per id wins), so
    /// loss accounting balances and settled requests are never retried.
    fn deliver(&mut self, entry: &CommitEntry) {
        let Some(batch) = WorkloadBatch::decode(&entry.payload) else {
            return;
        };
        for req in &batch.requests {
            if self.outstanding.remove(&req.id).is_some() {
                self.completed += 1;
            }
        }
    }
}

/// A seeded closed-loop client population.
///
/// `clients` clients each keep a *window* of `window` outstanding
/// requests: the population is primed with `clients × window` requests,
/// and a client only submits a replacement once one of its requests is
/// observed committed — so the offered rate self-regulates to what the
/// cluster can absorb, which is the defining contrast to the open-loop
/// [`ClientWorkload`]. Committed work is observed through the ordinary
/// [`App`] delivery path: the workload *is* an `App`, and the simulator
/// feeds it every finalized block. Records recovered from a delivered
/// [`WorkloadBatch`] complete the matching in-flight requests (first
/// delivery wins; later replicas' deliveries of the same block are
/// ignored), and each completion schedules one resubmission `think_time`
/// later — the simulator turns those into `ClientTick` events.
///
/// Determinism: replica targeting comes from an RNG seeded with `seed`,
/// completions arrive in the simulator's deterministic commit order, and
/// resubmissions fire at exact virtual times, so a seeded run reproduces
/// bit-for-bit.
///
/// Invariant: at most `clients × window` requests are ever uncommitted
/// ("in flight"). Without [`retry`](Self::with_retry), a request lost to
/// a never-finalized proposal permanently occupies its window slot
/// (mirroring a real closed-loop client that never gets its response and
/// visible as `requests_lost` in the metrics); with retry armed, the
/// request is resubmitted and the slot eventually turns over.
pub struct ClosedLoopWorkload {
    window: u32,
    think_time: Duration,
    /// Per-client think-time multipliers (empty = uniform ×1). Client `c`
    /// pauses `think_time × multipliers[c % len]` between a completion
    /// and its replacement submission, skewing per-client submit rates.
    think_multipliers: Vec<u32>,
    request_size: u64,
    mempools: Vec<SharedMempool>,
    rng: SmallRng,
    next_id: u64,
    clients: u16,
    fanout: usize,
    retry: RetryState,
    /// Requests submitted and not yet observed committed, by id.
    in_flight: HashMap<u64, Request>,
    /// Clients whose freed slot is waiting for its think-time tick, keyed
    /// by `(due time, completion seq)` so resubmissions pair with their
    /// own tick even when skewed think times reorder deadlines across
    /// clients (with uniform think times this degenerates to completion
    /// order, the historical behavior, bit-for-bit).
    resume_queue: std::collections::BTreeMap<(Time, u64), u16>,
    /// Completion counter: the deterministic tie-break for equal-time
    /// resubmission deadlines.
    resume_seq: u64,
    /// Tick times produced by completions and not yet scheduled.
    pending_ticks: Vec<Time>,
    submitted: u64,
    completed: u64,
    frozen: bool,
}

impl std::fmt::Debug for ClosedLoopWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosedLoopWorkload")
            .field("clients", &self.clients)
            .field("window", &self.window)
            .field("think_time", &self.think_time)
            .field("in_flight", &self.in_flight.len())
            .field("fanout", &self.fanout)
            .field("retry", &self.retry.timeout)
            .finish_non_exhaustive()
    }
}

impl ClosedLoopWorkload {
    /// A population of `clients` clients, each with `window` outstanding
    /// `request_size`-byte requests, pausing `think_time` between a
    /// completion and the replacement submission. Targets are drawn per
    /// request from an RNG seeded with `seed`; `mempools[i]` feeds
    /// replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `window` is zero or `mempools` is empty.
    pub fn new(
        clients: u16,
        window: u32,
        think_time: Duration,
        request_size: u64,
        seed: u64,
        mempools: Vec<SharedMempool>,
    ) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(window > 0, "window must be positive");
        assert!(!mempools.is_empty(), "need at least one replica mempool");
        ClosedLoopWorkload {
            window,
            think_time,
            think_multipliers: Vec::new(),
            request_size,
            mempools,
            rng: SmallRng::seed_from_u64(seed),
            next_id: 0,
            clients,
            fanout: 1,
            retry: RetryState::default(),
            in_flight: HashMap::new(),
            resume_queue: std::collections::BTreeMap::new(),
            resume_seq: 0,
            pending_ticks: Vec::new(),
            submitted: 0,
            completed: 0,
            frozen: false,
        }
    }

    /// Builder-style: enables per-request retransmission with the given
    /// timeout (see the module docs). Without it, a request lost to a
    /// never-finalized proposal permanently leaks its window slot.
    pub fn with_retry(mut self, timeout: Duration) -> Self {
        self.retry.timeout = Some(timeout);
        self
    }

    /// Builder-style: submits every request to `fanout` replicas (clamped
    /// to the cluster size) instead of one.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        self.fanout = fanout;
        self
    }

    /// Builder-style: skews per-client submit rates. Client `c` pauses
    /// `think_time × multipliers[c % multipliers.len()]` between a
    /// completion and its replacement submission, so a ×50 client offers
    /// 50× less load than a ×1 client. An empty vec (the default) keeps
    /// the uniform rate bit-for-bit; multipliers of zero are allowed
    /// (think-free resubmission for that client).
    pub fn with_think_multipliers(mut self, multipliers: Vec<u32>) -> Self {
        self.think_multipliers = multipliers;
        self
    }

    /// The think time client `c` pauses before a replacement submission.
    pub fn think_time_for(&self, client: u16) -> Duration {
        if self.think_multipliers.is_empty() {
            return self.think_time;
        }
        let k = self.think_multipliers[client as usize % self.think_multipliers.len()];
        self.think_time.saturating_mul(k as u64)
    }

    /// Number of clients in the population.
    pub fn clients(&self) -> u16 {
        self.clients
    }

    /// Outstanding-request window per client.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The population's in-flight cap, `clients × window`.
    pub fn max_in_flight(&self) -> u64 {
        self.clients as u64 * self.window as u64
    }

    /// Requests currently uncommitted (includes any lost to
    /// never-finalized proposals when retry is off).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Requests submitted so far (initial windows + resubmissions;
    /// retransmissions of an already-submitted id are *not* counted — see
    /// [`retries`](Self::retries)).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests observed committed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retransmissions performed so far.
    pub fn retries(&self) -> u64 {
        self.retry.retries
    }

    /// The per-replica pools this population feeds.
    pub fn mempools(&self) -> &[SharedMempool] {
        &self.mempools
    }

    /// *Unique* requests currently pending in at least one pool (with
    /// gossip or fan-out a request can have live copies in several).
    pub fn pending_in_pools(&self) -> u64 {
        let mut ids = std::collections::HashSet::new();
        for pool in &self.mempools {
            ids.extend(pool.lock().expect("mempool lock").pending_ids());
        }
        ids.len() as u64
    }

    /// True once [`freeze`](Self::freeze) was called.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Stops replacement submissions (retries of already-submitted
    /// requests keep firing). Drivers call this to drain the system at
    /// the end of a measured run.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Submits the full initial window of every client at `now`,
    /// returning how many requests were submitted. The simulator calls
    /// this once when the workload is attached.
    pub fn prime(&mut self, now: Time) -> u64 {
        let before = self.submitted;
        for client in 0..self.clients {
            for _ in 0..self.window {
                self.submit_for(client, now);
            }
        }
        self.submitted - before
    }

    /// Drains the tick times produced by completions since the last call;
    /// the simulator schedules one `ClientTick` per entry.
    pub fn take_pending_ticks(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.pending_ticks)
    }

    /// Allocation-free [`take_pending_ticks`](Self::take_pending_ticks):
    /// clears `out` and swaps it with the pending buffer, so the two
    /// vectors recycle their capacity between calls instead of allocating
    /// a fresh `Vec` per event — hot at 10⁵+ modeled clients.
    pub fn take_pending_ticks_into(&mut self, out: &mut Vec<Time>) {
        out.clear();
        std::mem::swap(&mut self.pending_ticks, out);
    }

    /// Drains the retry deadlines armed since the last call; the
    /// simulator schedules one retry tick per entry.
    pub fn take_pending_retry_ticks(&mut self) -> Vec<Time> {
        self.retry.take_pending_ticks()
    }

    /// Allocation-free [`take_pending_retry_ticks`](Self::take_pending_retry_ticks):
    /// the swap-buffer counterpart, like
    /// [`take_pending_ticks_into`](Self::take_pending_ticks_into).
    pub fn take_pending_retry_ticks_into(&mut self, out: &mut Vec<Time>) {
        self.retry.take_pending_ticks_into(out);
    }

    /// Handles one think-time tick at `now`: the freed slot with the
    /// earliest resubmission deadline submits its replacement request.
    /// Returns the target replica, or `None` if no slot is waiting (or
    /// the population is frozen for draining).
    pub fn resubmit_next(&mut self, now: Time) -> Option<ReplicaId> {
        if self.frozen {
            return None;
        }
        let key = *self.resume_queue.keys().next()?;
        let client = self.resume_queue.remove(&key).expect("key just read");
        Some(self.submit_for(client, now))
    }

    /// Handles one retry tick at `now`: every due, still-in-flight
    /// request is resubmitted (original id and submit timestamp, fresh
    /// seeded target) and re-armed. Returns how many were retried.
    pub fn handle_retry_tick(&mut self, now: Time) -> u64 {
        let mut retried = 0;
        while let Some(&(at, id)) = self.retry.deadlines.front() {
            if at > now {
                break;
            }
            self.retry.deadlines.pop_front();
            if let Some(req) = self.in_flight.get(&id).copied() {
                let target = self.rng.gen_range(0..self.mempools.len());
                push_fanout(&self.mempools, self.fanout, target, req);
                self.retry.retries += 1;
                self.retry.arm(id, now);
                retried += 1;
            }
        }
        retried
    }

    fn submit_for(&mut self, client: u16, now: Time) -> ReplicaId {
        let target = self.rng.gen_range(0..self.mempools.len());
        self.next_id += 1;
        self.submitted += 1;
        let req = Request {
            id: self.next_id,
            client,
            size: self.request_size,
            submitted_at: now,
        };
        self.in_flight.insert(req.id, req);
        push_fanout(&self.mempools, self.fanout, target, req);
        self.retry.arm(req.id, now);
        ReplicaId(target as u16)
    }
}

impl App for ClosedLoopWorkload {
    /// The completion hook: decodes the delivered block's batch (if any)
    /// and completes every record still in flight, scheduling each
    /// client's resubmission one think time after the commit. Duplicate
    /// deliveries of a request id (re-gossiped, retried or fanned-out
    /// copies landing in more than one block) complete nothing twice —
    /// the first delivery wins, which is the workload's half of the
    /// exactly-once dedup rule.
    fn deliver(&mut self, entry: &CommitEntry) {
        let Some(batch) = WorkloadBatch::decode(&entry.payload) else {
            return;
        };
        for req in &batch.requests {
            if self.in_flight.remove(&req.id).is_some() {
                self.completed += 1;
                let due = entry.committed_at + self.think_time_for(req.client);
                self.resume_queue.insert((due, self.resume_seq), req.client);
                self.resume_seq += 1;
                self.pending_ticks.push(due);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banyan_types::ids::Round;

    fn commit_of(batch: WorkloadBatch, at: u64) -> CommitEntry {
        use banyan_types::ids::BlockHash;
        CommitEntry {
            round: Round(1),
            block: BlockHash::ZERO,
            proposer: ReplicaId(0),
            payload: batch.into_payload(),
            proposed_at: Time::ZERO,
            committed_at: Time(at),
            fast: false,
            explicit: true,
        }
    }

    #[test]
    fn closed_loop_primes_full_windows_and_caps_in_flight() {
        let mempools: Vec<SharedMempool> = (0..3).map(|_| Mempool::shared(1_000)).collect();
        let mut w = ClosedLoopWorkload::new(5, 4, Duration::ZERO, 100, 1, mempools.clone());
        assert_eq!(w.prime(Time::ZERO), 20);
        assert_eq!(w.in_flight(), 20);
        assert_eq!(w.max_in_flight(), 20);
        let pending: usize = mempools.iter().map(|m| m.lock().unwrap().len()).sum();
        assert_eq!(pending, 20, "every primed request lands in a mempool");
        assert_eq!(w.pending_in_pools(), 20);
        // No completions yet, so no ticks and nothing to resubmit.
        assert!(w.take_pending_ticks().is_empty());
        assert!(w.resubmit_next(Time(1)).is_none());
        // Retry is off by default: no deadlines armed.
        assert!(w.take_pending_retry_ticks().is_empty());
    }

    #[test]
    fn closed_loop_completion_drives_resubmission() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(1_000)];
        let think = Duration::from_millis(5);
        let mut w = ClosedLoopWorkload::new(2, 1, think, 100, 1, mempools.clone());
        w.prime(Time::ZERO);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(drained.len(), 2);

        // Deliver a batch committing the first request only.
        let batch = WorkloadBatch {
            requests: vec![drained[0]],
        };
        w.deliver(&commit_of(batch.clone(), 1_000));
        assert_eq!(w.completed(), 1);
        assert_eq!(w.in_flight(), 1);
        let ticks = w.take_pending_ticks();
        assert_eq!(ticks, vec![Time(1_000) + think], "one tick, think later");

        // Re-delivery of the same batch (another replica committing the
        // same block) completes nothing twice.
        w.deliver(&commit_of(batch, 2_000));
        assert_eq!(w.completed(), 1);
        assert!(w.take_pending_ticks().is_empty());

        // The tick resubmits for the completed request's client; the
        // window cap is never exceeded.
        let at = ticks[0];
        assert!(w.resubmit_next(at).is_some());
        assert_eq!(w.in_flight(), 2);
        assert_eq!(w.submitted(), 3);
        assert!(w.in_flight() as u64 <= w.max_in_flight());
        assert!(w.resubmit_next(at).is_none(), "one tick, one resubmit");
    }

    #[test]
    fn think_multipliers_pair_each_tick_with_the_right_client() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(1_000)];
        let think = Duration::from_millis(2);
        let mut w = ClosedLoopWorkload::new(2, 1, think, 100, 1, mempools.clone())
            .with_think_multipliers(vec![1, 10]);
        assert_eq!(w.think_time_for(0), Duration::from_millis(2));
        assert_eq!(w.think_time_for(1), Duration::from_millis(20));
        w.prime(Time::ZERO);
        let mut drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(drained.len(), 2);
        // Deliver the SLOW client's completion first: its deadline
        // (commit + 20 ms) must not hijack the fast client's earlier tick.
        drained.sort_by_key(|r| std::cmp::Reverse(r.client));
        w.deliver(&commit_of(WorkloadBatch { requests: drained }, 1_000_000));
        let mut ticks = w.take_pending_ticks();
        ticks.sort();
        assert_eq!(ticks, vec![Time(3_000_000), Time(21_000_000)]);
        // The early tick resubmits the ×1 client, the late one the ×10.
        w.resubmit_next(ticks[0]);
        let fast = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(fast.iter().map(|r| r.client).collect::<Vec<_>>(), [0]);
        w.resubmit_next(ticks[1]);
        let slow = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(slow.iter().map(|r| r.client).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn closed_loop_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<usize> {
            let mempools: Vec<SharedMempool> = (0..4).map(|_| Mempool::shared(1_000)).collect();
            let mut w = ClosedLoopWorkload::new(8, 2, Duration::ZERO, 64, seed, mempools.clone());
            w.prime(Time::ZERO);
            mempools.iter().map(|m| m.lock().unwrap().len()).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should retarget");
    }

    #[test]
    fn open_loop_generator_is_seed_deterministic() {
        let run = |seed: u64| -> (Vec<u16>, Vec<usize>) {
            let mempools: Vec<SharedMempool> = (0..4).map(|_| Mempool::shared(100)).collect();
            let mut w = ClientWorkload::open_loop(1_000, 64, seed, mempools.clone());
            let targets: Vec<u16> = (0..20)
                .map(|k| w.submit_next(Time(k * w.interval().as_nanos())).0)
                .collect();
            let lens = mempools.iter().map(|m| m.lock().unwrap().len()).collect();
            (targets, lens)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should retarget");
    }

    #[test]
    fn fanout_submits_to_consecutive_replicas() {
        let mempools: Vec<SharedMempool> = (0..4).map(|_| Mempool::shared(100)).collect();
        let mut w =
            ClosedLoopWorkload::new(1, 1, Duration::ZERO, 64, 1, mempools.clone()).with_fanout(3);
        w.prime(Time::ZERO);
        let with_copy = mempools
            .iter()
            .filter(|m| !m.lock().unwrap().is_empty())
            .count();
        assert_eq!(with_copy, 3, "one request, three pools hold a copy");
        assert_eq!(w.submitted(), 1, "fan-out copies are one submission");
        assert_eq!(
            w.pending_in_pools(),
            1,
            "loss accounting counts unique requests, not fan-out copies"
        );
    }

    #[test]
    fn fanout_is_clamped_to_cluster_size() {
        let mempools: Vec<SharedMempool> = (0..2).map(|_| Mempool::shared(100)).collect();
        let mut w = ClientWorkload::open_loop(100, 64, 1, mempools.clone()).with_fanout(10);
        w.submit_next(Time(1));
        let copies: usize = w.mempools().iter().map(|m| m.lock().unwrap().len()).sum();
        assert_eq!(copies, 2, "clamped to one copy per pool");
        assert_eq!(w.pending_in_pools(), 1, "still one unique request");
    }

    #[test]
    fn retry_resubmits_uncommitted_requests_with_original_timestamp() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(100)];
        let timeout = Duration::from_millis(10);
        let mut w = ClosedLoopWorkload::new(1, 1, Duration::ZERO, 64, 1, mempools.clone())
            .with_retry(timeout);
        w.prime(Time::ZERO);
        let ticks = w.take_pending_retry_ticks();
        assert_eq!(ticks, vec![Time::ZERO + timeout], "submission arms retry");

        // The request is drained into a proposal that never finalizes.
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(drained.len(), 1);

        // The retry tick resubmits it — same id, original timestamp.
        assert_eq!(w.handle_retry_tick(ticks[0]), 1);
        assert_eq!(w.retries(), 1);
        let back = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(back, drained, "identical request re-enters the pool");
        // And the retry re-arms for another period.
        assert_eq!(w.take_pending_retry_ticks(), vec![ticks[0] + timeout]);
    }

    #[test]
    fn retry_skips_completed_requests() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(100)];
        let timeout = Duration::from_millis(10);
        let mut w = ClosedLoopWorkload::new(1, 1, Duration::ZERO, 64, 1, mempools.clone())
            .with_retry(timeout);
        w.prime(Time::ZERO);
        let ticks = w.take_pending_retry_ticks();
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        // The request commits before its deadline fires.
        w.deliver(&commit_of(
            WorkloadBatch {
                requests: drained.clone(),
            },
            5_000_000,
        ));
        assert_eq!(w.handle_retry_tick(ticks[0]), 0, "nothing left to retry");
        assert!(mempools[0].lock().unwrap().is_empty());
        assert!(w.take_pending_retry_ticks().is_empty(), "no re-arm");
    }

    #[test]
    fn open_loop_retry_tracks_completions() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(100)];
        let timeout = Duration::from_millis(10);
        let mut w = ClientWorkload::open_loop(1_000, 64, 1, mempools.clone()).with_retry(timeout);
        w.submit_next(Time(0));
        w.submit_next(Time(1_000_000));
        let ticks = w.take_pending_retry_ticks();
        assert_eq!(ticks.len(), 2);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        // First request commits; the second is lost with its proposal.
        w.deliver(&commit_of(
            WorkloadBatch {
                requests: vec![drained[0]],
            },
            2_000_000,
        ));
        assert_eq!(w.completed(), 1);
        assert_eq!(
            w.handle_retry_tick(ticks[1]),
            1,
            "only the lost one retries"
        );
        let back = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(back, vec![drained[1]]);
    }

    #[test]
    fn take_into_matches_take_and_recycles_the_buffer() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(1_000)];
        let timeout = Duration::from_millis(10);
        let mut w =
            ClosedLoopWorkload::new(2, 1, Duration::from_millis(1), 64, 1, mempools.clone())
                .with_retry(timeout);
        w.prime(Time::ZERO);
        let mut buf = vec![Time(999)]; // stale content must be cleared
        w.take_pending_retry_ticks_into(&mut buf);
        assert_eq!(buf, vec![Time::ZERO + timeout, Time::ZERO + timeout]);
        w.take_pending_retry_ticks_into(&mut buf);
        assert!(buf.is_empty(), "second drain is empty, stale ticks cleared");

        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        w.deliver(&commit_of(WorkloadBatch { requests: drained }, 1_000_000));
        w.take_pending_ticks_into(&mut buf);
        let due = Time(1_000_000) + Duration::from_millis(1);
        assert_eq!(buf, vec![due, due], "one think tick per completion");
        assert!(w.take_pending_ticks().is_empty(), "drained by the swap");
    }

    #[test]
    fn frozen_populations_stop_submitting_but_keep_retrying() {
        let mempools: Vec<SharedMempool> = vec![Mempool::shared(100)];
        let timeout = Duration::from_millis(10);
        let mut w = ClosedLoopWorkload::new(1, 1, Duration::ZERO, 64, 1, mempools.clone())
            .with_retry(timeout);
        w.prime(Time::ZERO);
        let ticks = w.take_pending_retry_ticks();
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        w.deliver(&commit_of(
            WorkloadBatch {
                requests: drained.clone(),
            },
            1_000,
        ));
        w.freeze();
        // The freed slot does not resubmit while frozen…
        assert!(w.resubmit_next(Time(2_000)).is_none());
        assert_eq!(w.submitted(), 1);
        // …but a still-in-flight request would keep retrying (here the
        // only request completed, so the tick is a no-op).
        assert_eq!(w.handle_retry_tick(ticks[0]), 0);
    }
}
