//! Fault injection: crashes, partitions, link degradation.
//!
//! The paper's §9.4 experiment crashes replicas and measures the impact on
//! throughput and block intervals; robustness tests additionally need
//! partitions (for asynchrony periods) and per-link delay (for straggler
//! scenarios). A [`FaultPlan`] is a static schedule consulted by the
//! simulator on every send, delivery and timer fire.

use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

/// A single scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// `replica` stops sending, receiving and firing timers at `at`
    /// (fail-stop; no recovery). The simulator **drops the engine** at the
    /// crash instant — heap state is really gone, exactly like a killed
    /// process.
    Crash {
        /// The replica that crashes.
        replica: ReplicaId,
        /// Crash instant.
        at: Time,
    },
    /// `replica` crashes at `at` and rejoins at `rejoin_at`, rebuilt from
    /// durable state (its WAL, or a snapshot captured at the crash
    /// instant) via the simulation's restart builder, then catches up to
    /// the live frontier through ranged sync.
    Restart {
        /// The replica that restarts.
        replica: ReplicaId,
        /// Crash instant.
        at: Time,
        /// Rejoin instant (must be after `at`).
        rejoin_at: Time,
    },
    /// All links between `group_a` and `group_b` drop messages during
    /// `[from, until)`. Models a network partition / asynchrony period.
    Partition {
        /// One side of the cut.
        group_a: Vec<ReplicaId>,
        /// The other side.
        group_b: Vec<ReplicaId>,
        /// Partition start.
        from: Time,
        /// Partition end (exclusive).
        until: Time,
    },
    /// Directed link `src → dst` gains `extra` one-way delay during
    /// `[from, until)`. Models congestion or a slow path.
    LinkDelay {
        /// Sending side.
        src: ReplicaId,
        /// Receiving side.
        dst: ReplicaId,
        /// Added one-way delay.
        extra: Duration,
        /// Degradation start.
        from: Time,
        /// Degradation end (exclusive).
        until: Time,
    },
}

/// A static fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: adds a crash.
    pub fn crash(mut self, replica: ReplicaId, at: Time) -> Self {
        self.faults.push(Fault::Crash { replica, at });
        self
    }

    /// Builder-style: adds a crash-then-rejoin.
    ///
    /// # Panics
    ///
    /// Panics unless `rejoin_at > at`.
    pub fn restart(mut self, replica: ReplicaId, at: Time, rejoin_at: Time) -> Self {
        assert!(rejoin_at > at, "rejoin must come after the crash");
        self.faults.push(Fault::Restart {
            replica,
            at,
            rejoin_at,
        });
        self
    }

    /// Builder-style: crashes `count` replicas (ids `0..count`) at `at`.
    ///
    /// With round-robin rotation these ids are **consecutive in rank
    /// order**, so several crashed ranks can stack their proposal delays
    /// within a single round — the worst case for rotating-leader
    /// protocols. Use [`FaultPlan::crash_spread`] for uncorrelated
    /// crashes.
    pub fn crash_first(mut self, count: usize, at: Time) -> Self {
        for i in 0..count {
            self.faults.push(Fault::Crash {
                replica: ReplicaId(i as u16),
                at,
            });
        }
        self
    }

    /// Builder-style: crashes `count` replicas spread evenly over the id
    /// space `[0, n)` at `at` (ids `⌊i·n/count⌋`). Models uncorrelated
    /// crashes: a crashed leader's next rank is almost always live, so
    /// each crashed-leader round costs one proposal delay (the paper's
    /// §9.4 "full timeout duration").
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn crash_spread(mut self, count: usize, n: usize, at: Time) -> Self {
        assert!(count <= n, "cannot crash more replicas than exist");
        for i in 0..count {
            let id = (i * n / count) as u16;
            self.faults.push(Fault::Crash {
                replica: ReplicaId(id),
                at,
            });
        }
        self
    }

    /// Builder-style: adds a partition.
    pub fn partition(
        mut self,
        group_a: Vec<ReplicaId>,
        group_b: Vec<ReplicaId>,
        from: Time,
        until: Time,
    ) -> Self {
        self.faults.push(Fault::Partition {
            group_a,
            group_b,
            from,
            until,
        });
        self
    }

    /// Builder-style: adds a directed link delay.
    pub fn link_delay(
        mut self,
        src: ReplicaId,
        dst: ReplicaId,
        extra: Duration,
        from: Time,
        until: Time,
    ) -> Self {
        self.faults.push(Fault::LinkDelay {
            src,
            dst,
            extra,
            from,
            until,
        });
        self
    }

    /// True if `replica` is down at `now`: crashed for good, or inside a
    /// [`Fault::Restart`]'s `[at, rejoin_at)` outage window.
    pub fn is_crashed(&self, replica: ReplicaId, now: Time) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::Crash { replica: r, at } => *r == replica && now >= *at,
            Fault::Restart {
                replica: r,
                at,
                rejoin_at,
            } => *r == replica && now >= *at && now < *rejoin_at,
            _ => false,
        })
    }

    /// True if a message sent `src → dst` at `now` is cut by a partition.
    pub fn is_cut(&self, src: ReplicaId, dst: ReplicaId, now: Time) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::Partition {
                group_a,
                group_b,
                from,
                until,
            } => {
                now >= *from
                    && now < *until
                    && ((group_a.contains(&src) && group_b.contains(&dst))
                        || (group_b.contains(&src) && group_a.contains(&dst)))
            }
            _ => false,
        })
    }

    /// Extra one-way delay on `src → dst` for a message sent at `now`.
    pub fn extra_delay(&self, src: ReplicaId, dst: ReplicaId, now: Time) -> Duration {
        let mut total = Duration::ZERO;
        for f in &self.faults {
            if let Fault::LinkDelay {
                src: s,
                dst: d,
                extra,
                from,
                until,
            } = f
            {
                if *s == src && *d == dst && now >= *from && now < *until {
                    total = total + *extra;
                }
            }
        }
        total
    }

    /// Ids of replicas that crash at any point in the plan — including
    /// ones that later rejoin. Harnesses exclude these from observer
    /// selection (a restarted replica's commit timeline has a gap).
    pub fn crashed_replicas(&self) -> Vec<ReplicaId> {
        let mut out: Vec<ReplicaId> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { replica, .. } => Some(*replica),
                Fault::Restart { replica, .. } => Some(*replica),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All scheduled restarts as `(replica, crash_at, rejoin_at)`.
    pub fn restarts(&self) -> Vec<(ReplicaId, Time, Time)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Restart {
                    replica,
                    at,
                    rejoin_at,
                } => Some((*replica, *at, *rejoin_at)),
                _ => None,
            })
            .collect()
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_takes_effect_at_time() {
        let plan = FaultPlan::none().crash(ReplicaId(3), Time(100));
        assert!(!plan.is_crashed(ReplicaId(3), Time(99)));
        assert!(plan.is_crashed(ReplicaId(3), Time(100)));
        assert!(plan.is_crashed(ReplicaId(3), Time(1000)));
        assert!(!plan.is_crashed(ReplicaId(2), Time(1000)));
    }

    #[test]
    fn restart_outage_is_an_interval() {
        let plan = FaultPlan::none().restart(ReplicaId(2), Time(100), Time(300));
        assert!(!plan.is_crashed(ReplicaId(2), Time(99)));
        assert!(plan.is_crashed(ReplicaId(2), Time(100)));
        assert!(plan.is_crashed(ReplicaId(2), Time(299)));
        assert!(!plan.is_crashed(ReplicaId(2), Time(300)), "rejoined");
        assert_eq!(plan.crashed_replicas(), vec![ReplicaId(2)]);
        assert_eq!(plan.restarts(), vec![(ReplicaId(2), Time(100), Time(300))]);
    }

    #[test]
    fn crash_first_crashes_lowest_ids() {
        let plan = FaultPlan::none().crash_first(3, Time(0));
        assert_eq!(
            plan.crashed_replicas(),
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)]
        );
    }

    #[test]
    fn partition_is_symmetric_and_bounded() {
        let plan = FaultPlan::none().partition(
            vec![ReplicaId(0), ReplicaId(1)],
            vec![ReplicaId(2)],
            Time(10),
            Time(20),
        );
        assert!(!plan.is_cut(ReplicaId(0), ReplicaId(2), Time(9)));
        assert!(plan.is_cut(ReplicaId(0), ReplicaId(2), Time(10)));
        assert!(plan.is_cut(ReplicaId(2), ReplicaId(1), Time(15)));
        assert!(!plan.is_cut(ReplicaId(2), ReplicaId(1), Time(20)));
        // Within a group, no cut.
        assert!(!plan.is_cut(ReplicaId(0), ReplicaId(1), Time(15)));
    }

    #[test]
    fn link_delay_is_directed_and_additive() {
        let plan = FaultPlan::none()
            .link_delay(
                ReplicaId(0),
                ReplicaId(1),
                Duration::from_millis(5),
                Time(0),
                Time(100),
            )
            .link_delay(
                ReplicaId(0),
                ReplicaId(1),
                Duration::from_millis(3),
                Time(0),
                Time(50),
            );
        assert_eq!(
            plan.extra_delay(ReplicaId(0), ReplicaId(1), Time(10)),
            Duration::from_millis(8)
        );
        assert_eq!(
            plan.extra_delay(ReplicaId(0), ReplicaId(1), Time(60)),
            Duration::from_millis(5)
        );
        // Reverse direction unaffected.
        assert_eq!(
            plan.extra_delay(ReplicaId(1), ReplicaId(0), Time(10)),
            Duration::ZERO
        );
    }
}
