//! Cohort-aggregated client populations: 10⁶ modeled clients in O(K)
//! memory.
//!
//! [`ClosedLoopWorkload`](crate::ClosedLoopWorkload) keeps per-client
//! state, so sweeps top out at thousands of clients. [`CohortWorkload`]
//! models a population of `modeled_clients` clients as `K` **cohorts** —
//! each cohort aggregates `members` statistically identical clients into
//! four numbers (members, outstanding, deferred demand, token clock) plus
//! a bounded latency reservoir. Aggregate submit statistics are *exact*:
//!
//! * **window accounting** — a cohort of `m` members with window `w`
//!   never holds more than `m × w` outstanding requests, and the whole
//!   population never exceeds `min(modeled × window, max_outstanding)`
//!   in flight (the *admission cap* bounds driver memory independently
//!   of the modeled population);
//! * **token-bucket pacing** — an optional per-cohort submit interval
//!   (derived from a per-client rate × members) spaces submissions out
//!   instead of flooding the pools at t = 0; deferred slots are counted
//!   as *demand* and pumped as tokens ripen;
//! * **latency reservoirs** — per-cohort Algorithm-R samples of commit
//!   latency, drawn from a *separate* seeded RNG stream so sampling never
//!   perturbs replica targeting.
//!
//! **Equivalence:** with one member per cohort (`K = clients`), no rate
//! limit and the default admission cap, the submission stream — every
//! RNG draw, request id, retry deadline and resume tick — is
//! bit-identical to `ClosedLoopWorkload` with the same seed (asserted by
//! `crates/simnet/tests/proptest_cohort.rs`). The aggregate model is a
//! strict generalization, not a parallel implementation that can drift.
//!
//! **Load shapes** ([`LoadShape`]) reshape the token rate over virtual
//! time: a flash crowd multiplies it for a burst window, a diurnal curve
//! walks it through an integer triangle wave, and a regional outage
//! makes affected cohorts *fail over* — submissions that would target a
//! partitioned replica redirect to its successor, the client-side
//! complement of `ByzantineMode::CensorClients`.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use banyan_types::app::App;
use banyan_types::engine::CommitEntry;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

#[cfg(test)]
use crate::workload::Mempool;
use crate::workload::{Request, SharedMempool, WorkloadBatch};

/// Bound on each cohort's latency reservoir (Algorithm R).
const RESERVOIR_CAP: usize = 256;

/// A programmable aggregate load shape (see the module docs). All shapes
/// are exact functions of virtual time, so shaped runs stay
/// deterministic per seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadShape {
    /// Constant token rate (the default).
    Steady,
    /// The token rate multiplies by `factor` during
    /// `[at, at + duration)` — a flash crowd arriving and leaving.
    FlashCrowd {
        /// Burst start (virtual time).
        at: Time,
        /// Rate multiplier during the burst (≥ 1).
        factor: u32,
        /// Burst length.
        duration: Duration,
    },
    /// The token *interval* walks an integer triangle wave between ×1
    /// (peak) and ×`trough` (quietest) over each `period` — a diurnal
    /// curve without floating-point drift.
    Diurnal {
        /// Full wave period.
        period: Duration,
        /// Interval multiplier at the trough (≥ 1).
        trough: u32,
    },
    /// Replica `replica` is unreachable from its region during
    /// `[at, at + duration)`: submissions (initial, resumed or retried)
    /// that drew it as primary fail over to its ring successor. Pairs
    /// with `ByzantineMode::CensorClients` — censored clients keep their
    /// aggregate rate but route around the censor.
    RegionalOutage {
        /// Outage start (virtual time).
        at: Time,
        /// Outage length.
        duration: Duration,
        /// The partitioned replica.
        replica: usize,
    },
}

/// One cohort's aggregate state: O(1) per cohort regardless of how many
/// clients it models.
#[derive(Debug)]
struct Cohort {
    /// Modeled clients aggregated into this cohort.
    members: u64,
    /// Outstanding-window cap: `members × window`.
    cap: u64,
    /// Requests submitted and not yet observed committed.
    outstanding: u64,
    /// Freed slots that want to submit but were deferred by the token
    /// bucket or the global admission cap.
    demand: u64,
    /// Earliest time the next token is available (`None` interval =
    /// unlimited; the field is then unused).
    next_token_at: Time,
    /// The token tick currently scheduled for this cohort, if any —
    /// dedups pending ticks so a backlogged cohort arms one timer, not
    /// one per deferred slot.
    armed_token_tick: Option<Time>,
    submitted: u64,
    completed: u64,
    /// Algorithm-R latency reservoir: a uniform sample of this cohort's
    /// commit latencies.
    reservoir: Vec<Duration>,
    /// Latencies offered to the reservoir so far.
    observed: u64,
}

/// Aggregate statistics for one cohort (reporting; see
/// [`CohortWorkload::cohort_stats`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CohortStats {
    /// Modeled clients in the cohort.
    pub members: u64,
    /// Requests submitted by the cohort so far.
    pub submitted: u64,
    /// Requests observed committed so far.
    pub completed: u64,
    /// Requests currently outstanding.
    pub outstanding: u64,
    /// Freed slots currently deferred by pacing or admission.
    pub demand: u64,
    /// Median of the latency reservoir (`None` until a commit lands).
    pub latency_p50: Option<Duration>,
}

/// A seeded closed-loop population of up to millions of *modeled*
/// clients, aggregated into `K` cohorts (see the module docs).
pub struct CohortWorkload {
    window: u32,
    think_time: Duration,
    request_size: u64,
    mempools: Vec<SharedMempool>,
    /// Replica-targeting RNG — the same draw stream as
    /// `ClosedLoopWorkload` (one `gen_range` per submission or retry).
    rng: SmallRng,
    /// Reservoir-sampling RNG, deliberately separate so sampling never
    /// perturbs targeting.
    stats_rng: SmallRng,
    next_id: u64,
    modeled_clients: u64,
    cohorts: Vec<Cohort>,
    /// Per-submission token interval per *member* (None = unlimited). A
    /// cohort of `m` members paces at `interval / m`.
    interval: Option<Duration>,
    shape: LoadShape,
    fanout: usize,
    retry: RetryState,
    /// Global admission cap: in-flight requests never exceed it, so
    /// driver memory is O(cap), not O(modeled clients × window).
    max_outstanding: u64,
    outstanding_total: u64,
    /// Requests submitted and not yet observed committed, by id —
    /// bounded by the admission cap.
    in_flight: HashMap<u64, Request>,
    /// Freed slots waiting for their think-time tick, keyed by
    /// `(due, completion seq)` — the `ClosedLoopWorkload` resume rule.
    resume_queue: BTreeMap<(Time, u64), u16>,
    resume_seq: u64,
    pending_ticks: Vec<Time>,
    submitted: u64,
    completed: u64,
    frozen: bool,
}

/// Per-request retransmission state — the same FIFO discipline as the
/// per-client workloads (constant timeout keeps the deque sorted).
#[derive(Debug, Default)]
struct RetryState {
    timeout: Option<Duration>,
    deadlines: std::collections::VecDeque<(Time, u64)>,
    pending_ticks: Vec<Time>,
    retries: u64,
}

impl RetryState {
    fn arm(&mut self, id: u64, now: Time) {
        if let Some(timeout) = self.timeout {
            let at = now + timeout;
            self.deadlines.push_back((at, id));
            self.pending_ticks.push(at);
        }
    }
}

impl std::fmt::Debug for CohortWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortWorkload")
            .field("modeled_clients", &self.modeled_clients)
            .field("cohorts", &self.cohorts.len())
            .field("window", &self.window)
            .field("max_outstanding", &self.max_outstanding)
            .field("interval", &self.interval)
            .field("shape", &self.shape)
            .finish_non_exhaustive()
    }
}

impl CohortWorkload {
    /// A population of `modeled_clients` clients aggregated into
    /// `cohorts` cohorts (members split as evenly as possible; the first
    /// `modeled_clients % cohorts` cohorts hold one extra). Each modeled
    /// client keeps a window of `window` outstanding `request_size`-byte
    /// requests and pauses `think_time` between a completion and the
    /// replacement submission.
    ///
    /// # Panics
    ///
    /// Panics if `modeled_clients` or `window` is zero, `cohorts` is
    /// zero, exceeds `u16::MAX` (cohort ids travel in the request's
    /// `client` field) or exceeds `modeled_clients`, or `mempools` is
    /// empty.
    pub fn new(
        modeled_clients: u64,
        cohorts: u16,
        window: u32,
        think_time: Duration,
        request_size: u64,
        seed: u64,
        mempools: Vec<SharedMempool>,
    ) -> Self {
        assert!(modeled_clients > 0, "need at least one modeled client");
        assert!(window > 0, "window must be positive");
        assert!(cohorts > 0, "need at least one cohort");
        assert!(
            cohorts as u64 <= modeled_clients,
            "more cohorts than modeled clients"
        );
        assert!(!mempools.is_empty(), "need at least one replica mempool");
        let k = cohorts as u64;
        let base = modeled_clients / k;
        let extra = modeled_clients % k;
        let cohorts: Vec<Cohort> = (0..k)
            .map(|i| {
                let members = base + u64::from(i < extra);
                Cohort {
                    members,
                    cap: members * window as u64,
                    outstanding: 0,
                    demand: 0,
                    next_token_at: Time::ZERO,
                    armed_token_tick: None,
                    submitted: 0,
                    completed: 0,
                    reservoir: Vec::new(),
                    observed: 0,
                }
            })
            .collect();
        CohortWorkload {
            window,
            think_time,
            request_size,
            mempools,
            rng: SmallRng::seed_from_u64(seed),
            stats_rng: SmallRng::seed_from_u64(seed ^ 0xBEEF_FACE_CAFE_F00D),
            next_id: 0,
            modeled_clients,
            cohorts,
            interval: None,
            shape: LoadShape::Steady,
            fanout: 1,
            retry: RetryState::default(),
            max_outstanding: modeled_clients.saturating_mul(window as u64),
            outstanding_total: 0,
            in_flight: HashMap::new(),
            resume_queue: BTreeMap::new(),
            resume_seq: 0,
            pending_ticks: Vec::new(),
            submitted: 0,
            completed: 0,
            frozen: false,
        }
    }

    /// Builder-style: paces each *modeled client* at one submission per
    /// `interval` (a cohort of `m` members gets an aggregate interval of
    /// `interval / m`). Without it, freed slots resubmit immediately —
    /// the pure closed loop.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_member_interval(mut self, interval: Duration) -> Self {
        assert!(interval > Duration::ZERO, "token interval must be positive");
        self.interval = Some(interval);
        self
    }

    /// Builder-style: installs a [`LoadShape`] (default
    /// [`LoadShape::Steady`]).
    pub fn with_shape(mut self, shape: LoadShape) -> Self {
        self.shape = shape;
        self
    }

    /// Builder-style: caps the population's total in-flight requests
    /// below `modeled × window`, bounding driver memory for huge modeled
    /// populations. Deferred slots are counted as demand and admitted as
    /// completions free capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_outstanding(mut self, cap: u64) -> Self {
        assert!(cap > 0, "admission cap must be positive");
        self.max_outstanding = cap.min(self.modeled_clients * self.window as u64);
        self
    }

    /// Builder-style: enables per-request retransmission with the given
    /// timeout (the `ClosedLoopWorkload` retry discipline).
    pub fn with_retry(mut self, timeout: Duration) -> Self {
        self.retry.timeout = Some(timeout);
        self
    }

    /// Builder-style: submits every request to `fanout` replicas
    /// (clamped to the cluster size) instead of one.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        self.fanout = fanout;
        self
    }

    /// Total modeled clients.
    pub fn modeled_clients(&self) -> u64 {
        self.modeled_clients
    }

    /// Number of cohorts.
    pub fn cohorts(&self) -> u16 {
        self.cohorts.len() as u16
    }

    /// The population's in-flight cap:
    /// `min(modeled × window, admission cap)`.
    pub fn max_in_flight(&self) -> u64 {
        self.max_outstanding
    }

    /// Requests currently in flight (≤ [`max_in_flight`](Self::max_in_flight)).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Requests submitted so far (retransmissions not counted).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests observed committed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retransmissions performed so far.
    pub fn retries(&self) -> u64 {
        self.retry.retries
    }

    /// Freed slots currently deferred by pacing or admission, across all
    /// cohorts.
    pub fn deferred_demand(&self) -> u64 {
        self.cohorts.iter().map(|c| c.demand).sum()
    }

    /// The per-replica pools this population feeds.
    pub fn mempools(&self) -> &[SharedMempool] {
        &self.mempools
    }

    /// *Unique* requests currently pending in at least one pool.
    pub fn pending_in_pools(&self) -> u64 {
        let mut ids = std::collections::HashSet::new();
        for pool in &self.mempools {
            ids.extend(pool.lock().expect("mempool lock").pending_ids());
        }
        ids.len() as u64
    }

    /// Aggregate statistics for cohort `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cohort_stats(&self, c: u16) -> CohortStats {
        let cohort = &self.cohorts[c as usize];
        let latency_p50 = (!cohort.reservoir.is_empty()).then(|| {
            let mut sorted = cohort.reservoir.clone();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        });
        CohortStats {
            members: cohort.members,
            submitted: cohort.submitted,
            completed: cohort.completed,
            outstanding: cohort.outstanding,
            demand: cohort.demand,
            latency_p50,
        }
    }

    /// True once [`freeze`](Self::freeze) was called.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Stops new submissions (retries of in-flight requests keep
    /// firing) — the end-of-run drain hook.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// The token interval cohort `c` is pacing at around `now`, shaped
    /// by the configured [`LoadShape`]. `None` = unlimited.
    fn effective_interval(&self, c: usize, now: Time) -> Option<Duration> {
        let member = self.interval?;
        let members = self.cohorts[c].members;
        // Aggregate pacing: m members at one per `member` each.
        let base = Duration((member.0 / members).max(1));
        let shaped = match self.shape {
            LoadShape::Steady | LoadShape::RegionalOutage { .. } => base,
            LoadShape::FlashCrowd {
                at,
                factor,
                duration,
            } => {
                if now >= at && now < at + duration {
                    Duration((base.0 / u64::from(factor.max(1))).max(1))
                } else {
                    base
                }
            }
            LoadShape::Diurnal { period, trough } => {
                // Integer triangle wave: interval multiplier walks
                // 1 → trough → 1 over each period.
                let span = u64::from(trough.max(1)) - 1;
                if span == 0 || period == Duration::ZERO {
                    base
                } else {
                    let phase = now.0 % period.0;
                    let half = period.0 / 2;
                    let steps = if phase < half {
                        phase * span / half.max(1)
                    } else {
                        (period.0 - phase) * span / half.max(1)
                    };
                    base.saturating_mul(1 + steps)
                }
            }
        };
        Some(shaped)
    }

    /// Applies the regional-outage failover rule to a drawn primary.
    fn failover(&self, target: usize, now: Time) -> usize {
        if let LoadShape::RegionalOutage {
            at,
            duration,
            replica,
        } = self.shape
        {
            if target == replica && now >= at && now < at + duration {
                return (target + 1) % self.mempools.len();
            }
        }
        target
    }

    /// Can the population admit one more in-flight request?
    fn can_admit(&self) -> bool {
        self.outstanding_total < self.max_outstanding
    }

    /// Submits one request for cohort `c` at `now`, drawing the target
    /// from the shared RNG stream (exactly one draw, the
    /// `ClosedLoopWorkload` discipline). Caller has already checked
    /// window, admission and token constraints.
    fn submit_for(&mut self, c: usize, now: Time) -> ReplicaId {
        let target = self.rng.gen_range(0..self.mempools.len());
        let target = self.failover(target, now);
        self.next_id += 1;
        self.submitted += 1;
        let cohort = &mut self.cohorts[c];
        cohort.submitted += 1;
        cohort.outstanding += 1;
        self.outstanding_total += 1;
        let req = Request {
            id: self.next_id,
            client: c as u16,
            size: self.request_size,
            submitted_at: now,
        };
        self.in_flight.insert(req.id, req);
        push_fanout(&self.mempools, self.fanout, target, req);
        self.retry.arm(req.id, now);
        ReplicaId(target as u16)
    }

    /// Tries to submit one request for cohort `c` at `now`: consumes a
    /// token when pacing is on, defers to demand when the window, the
    /// admission cap or the token bucket refuses. Returns `true` on
    /// submission.
    fn try_submit(&mut self, c: usize, now: Time) -> bool {
        if self.cohorts[c].outstanding >= self.cohorts[c].cap || !self.can_admit() {
            // Capacity misses defer *unarmed*: capacity frees on a
            // completion, whose resume tick pumps the demand — arming a
            // timer here would busy-spin the event queue.
            self.cohorts[c].demand += 1;
            return false;
        }
        match self.effective_interval(c, now) {
            None => {
                self.submit_for(c, now);
                true
            }
            Some(interval) => {
                if now >= self.cohorts[c].next_token_at {
                    self.cohorts[c].next_token_at = now + interval;
                    self.submit_for(c, now);
                    true
                } else {
                    // Token miss: defer and arm (at most) one tick at
                    // the token's ripe time, which is strictly ahead of
                    // `now`.
                    let cohort = &mut self.cohorts[c];
                    cohort.demand += 1;
                    let at = cohort.next_token_at;
                    if cohort.armed_token_tick != Some(at) {
                        cohort.armed_token_tick = Some(at);
                        self.pending_ticks.push(at);
                    }
                    false
                }
            }
        }
    }

    /// Pumps deferred demand at `now`: every cohort with demand submits
    /// while its window, the admission cap and its token clock allow.
    /// Returns how many requests were submitted. With no pacing
    /// configured, demand only accrues at the admission cap, so the pump
    /// makes no RNG draws in the equivalence configuration.
    fn pump(&mut self, now: Time) -> u64 {
        let mut submitted = 0;
        for c in 0..self.cohorts.len() {
            if self.cohorts[c].demand == 0 {
                continue;
            }
            // Disarm only a timer that has fired: clearing a still-future
            // arm would let every unrelated tick re-push the same token
            // tick, multiplying ClientTick events into a storm.
            if self.cohorts[c].armed_token_tick.is_some_and(|at| at <= now) {
                self.cohorts[c].armed_token_tick = None;
            }
            while self.cohorts[c].demand > 0 {
                // `try_submit` re-defers on a miss; balance the counter
                // before the attempt so a deferral is not double-counted.
                self.cohorts[c].demand -= 1;
                if self.try_submit(c, now) {
                    submitted += 1;
                } else {
                    break;
                }
            }
        }
        submitted
    }

    /// Handles one client tick at `now`: the earliest freed slot (if
    /// any) submits its replacement, then deferred demand is pumped.
    /// Returns how many requests were submitted.
    pub fn handle_tick(&mut self, now: Time) -> u64 {
        if self.frozen {
            return 0;
        }
        let mut submitted = 0;
        // Pop the earliest freed slot only once its think time is due —
        // a token tick must not steal a future resume slot. (Resume
        // ticks are scheduled at exactly the due time, so the slot's own
        // tick always finds it due.)
        if let Some(&key) = self.resume_queue.keys().next() {
            if key.0 <= now {
                let c = self.resume_queue.remove(&key).expect("key just read");
                if self.try_submit(c as usize, now) {
                    submitted += 1;
                }
            }
        }
        submitted + self.pump(now)
    }

    /// Submits the initial windows at `now`, pacing-aware: each cohort
    /// primes `cap` slots, deferring what the token bucket or admission
    /// cap rejects (so a paced million-client population ramps up instead
    /// of flooding the pools at t = 0). Returns how many requests were
    /// submitted. The simulator calls this once at attach.
    pub fn prime(&mut self, now: Time) -> u64 {
        let before = self.submitted;
        for c in 0..self.cohorts.len() {
            for _ in 0..self.cohorts[c].cap {
                self.try_submit(c, now);
            }
        }
        self.submitted - before
    }

    /// Drains the tick times produced since the last call; the simulator
    /// schedules one `ClientTick` per entry.
    pub fn take_pending_ticks(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.pending_ticks)
    }

    /// Allocation-free [`take_pending_ticks`](Self::take_pending_ticks):
    /// clears `out` and swaps it with the pending buffer.
    pub fn take_pending_ticks_into(&mut self, out: &mut Vec<Time>) {
        out.clear();
        std::mem::swap(&mut self.pending_ticks, out);
    }

    /// Drains the retry deadlines armed since the last call.
    pub fn take_pending_retry_ticks(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.retry.pending_ticks)
    }

    /// Allocation-free
    /// [`take_pending_retry_ticks`](Self::take_pending_retry_ticks).
    pub fn take_pending_retry_ticks_into(&mut self, out: &mut Vec<Time>) {
        out.clear();
        std::mem::swap(&mut self.retry.pending_ticks, out);
    }

    /// Handles one retry tick at `now`: every due, still-in-flight
    /// request is resubmitted (original id and timestamp, fresh seeded
    /// target) and re-armed. Returns how many were retried.
    pub fn handle_retry_tick(&mut self, now: Time) -> u64 {
        let mut retried = 0;
        while let Some(&(at, id)) = self.retry.deadlines.front() {
            if at > now {
                break;
            }
            self.retry.deadlines.pop_front();
            if let Some(req) = self.in_flight.get(&id).copied() {
                let target = self.rng.gen_range(0..self.mempools.len());
                let target = self.failover(target, now);
                push_fanout(&self.mempools, self.fanout, target, req);
                self.retry.retries += 1;
                self.retry.arm(id, now);
                retried += 1;
            }
        }
        retried
    }
}

/// Pushes `req` into `fanout` pools (the shared dissemination client
/// rule: sampled primary plus ring successors, no extra RNG draws).
fn push_fanout(mempools: &[SharedMempool], fanout: usize, primary: usize, req: Request) {
    let n = mempools.len();
    for k in 0..fanout.clamp(1, n) {
        mempools[(primary + k) % n]
            .lock()
            .expect("mempool lock")
            .push(req);
    }
}

impl App for CohortWorkload {
    /// Completion hook: decodes the delivered batch and settles every
    /// record still in flight (first delivery per id wins). Each
    /// completion frees its cohort slot, feeds the cohort's latency
    /// reservoir and schedules a replacement one think time later.
    fn deliver(&mut self, entry: &CommitEntry) {
        let Some(batch) = WorkloadBatch::decode(&entry.payload) else {
            return;
        };
        for req in &batch.requests {
            if self.in_flight.remove(&req.id).is_none() {
                continue;
            }
            self.completed += 1;
            self.outstanding_total = self.outstanding_total.saturating_sub(1);
            let c = req.client as usize % self.cohorts.len();
            let latency = entry.committed_at.since(req.submitted_at);
            let cohort = &mut self.cohorts[c];
            cohort.completed += 1;
            cohort.outstanding = cohort.outstanding.saturating_sub(1);
            // Algorithm R: keep each observed latency with probability
            // reservoir_cap / observed, replacing a uniform victim.
            cohort.observed += 1;
            if cohort.reservoir.len() < RESERVOIR_CAP {
                cohort.reservoir.push(latency);
            } else {
                let j = self.stats_rng.gen_range(0..cohort.observed);
                if (j as usize) < RESERVOIR_CAP {
                    cohort.reservoir[j as usize] = latency;
                }
            }
            let due = entry.committed_at + self.think_time;
            self.resume_queue.insert((due, self.resume_seq), c as u16);
            self.resume_seq += 1;
            self.pending_ticks.push(due);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools(n: usize) -> Vec<SharedMempool> {
        (0..n).map(|_| Mempool::shared(1 << 20)).collect()
    }

    fn commit_of(requests: Vec<Request>, at: u64) -> CommitEntry {
        use banyan_types::ids::{BlockHash, Round};
        CommitEntry {
            round: Round(1),
            block: BlockHash::ZERO,
            proposer: ReplicaId(0),
            payload: WorkloadBatch { requests }.into_payload(),
            proposed_at: Time::ZERO,
            committed_at: Time(at),
            fast: false,
            explicit: true,
        }
    }

    #[test]
    fn million_clients_prime_in_cohort_memory() {
        let mempools = pools(4);
        let mut w = CohortWorkload::new(1_000_000, 64, 4, Duration::ZERO, 64, 42, mempools.clone())
            .with_max_outstanding(10_000);
        assert_eq!(w.prime(Time::ZERO), 10_000, "admission cap bounds prime");
        assert_eq!(w.in_flight(), 10_000);
        assert_eq!(w.max_in_flight(), 10_000);
        assert_eq!(
            w.deferred_demand(),
            4_000_000 - 10_000,
            "the rest is aggregate demand, not per-request state"
        );
        assert_eq!(w.pending_in_pools(), 10_000);
    }

    #[test]
    fn members_split_evenly_with_remainder_up_front() {
        let w = CohortWorkload::new(10, 3, 1, Duration::ZERO, 64, 1, pools(1));
        let members: Vec<u64> = (0..3).map(|c| w.cohort_stats(c).members).collect();
        assert_eq!(members, [4, 3, 3]);
        assert_eq!(members.iter().sum::<u64>(), 10);
    }

    #[test]
    fn completion_frees_slot_and_resubmits_on_tick() {
        let mempools = pools(1);
        let mut w = CohortWorkload::new(4, 2, 1, Duration::from_millis(5), 64, 1, mempools.clone());
        assert_eq!(w.prime(Time::ZERO), 4);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        w.deliver(&commit_of(vec![drained[0]], 1_000_000));
        assert_eq!(w.completed(), 1);
        assert_eq!(w.in_flight(), 3);
        let ticks = w.take_pending_ticks();
        assert_eq!(ticks, vec![Time(1_000_000) + Duration::from_millis(5)]);
        assert_eq!(w.handle_tick(ticks[0]), 1, "the freed slot resubmits");
        assert_eq!(w.in_flight(), 4);
        assert!(w.in_flight() as u64 <= w.max_in_flight());
    }

    #[test]
    fn token_bucket_paces_submissions() {
        let mempools = pools(1);
        // 2 modeled clients in one cohort, window 2, one submission per
        // client per 10 ms → cohort interval 5 ms.
        let mut w = CohortWorkload::new(2, 1, 2, Duration::ZERO, 64, 1, mempools.clone())
            .with_member_interval(Duration::from_millis(10));
        assert_eq!(w.prime(Time::ZERO), 1, "one token at t=0");
        assert_eq!(w.deferred_demand(), 3);
        let ticks = w.take_pending_ticks();
        assert_eq!(ticks, vec![Time(5_000_000)], "one armed token tick");
        assert_eq!(w.handle_tick(Time(5_000_000)), 1, "next token admits one");
        assert_eq!(w.deferred_demand(), 2);
        // The pump re-arms itself at the next token's ripe time.
        assert_eq!(w.take_pending_ticks(), vec![Time(10_000_000)]);
    }

    #[test]
    fn admission_cap_admits_as_completions_free_capacity() {
        let mempools = pools(1);
        let mut w = CohortWorkload::new(8, 2, 1, Duration::ZERO, 64, 1, mempools.clone())
            .with_max_outstanding(2);
        assert_eq!(w.prime(Time::ZERO), 2);
        assert_eq!(w.deferred_demand(), 6);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        w.deliver(&commit_of(drained, 1_000));
        assert_eq!(w.in_flight(), 0);
        let ticks = w.take_pending_ticks();
        assert!(!ticks.is_empty());
        w.handle_tick(ticks[0]);
        assert_eq!(w.in_flight(), 2, "freed capacity re-admits deferred demand");
        assert!(w.in_flight() as u64 <= w.max_in_flight());
    }

    #[test]
    fn flash_crowd_shrinks_the_interval_during_the_burst() {
        let w = CohortWorkload::new(1, 1, 1, Duration::ZERO, 64, 1, pools(1))
            .with_member_interval(Duration::from_millis(10))
            .with_shape(LoadShape::FlashCrowd {
                at: Time(1_000_000_000),
                factor: 10,
                duration: Duration::from_secs(1),
            });
        assert_eq!(
            w.effective_interval(0, Time(0)),
            Some(Duration::from_millis(10))
        );
        assert_eq!(
            w.effective_interval(0, Time(1_500_000_000)),
            Some(Duration::from_millis(1)),
            "10× the rate during the burst"
        );
        assert_eq!(
            w.effective_interval(0, Time(2_000_000_000)),
            Some(Duration::from_millis(10)),
            "burst over"
        );
    }

    #[test]
    fn diurnal_interval_walks_a_triangle_wave() {
        let w = CohortWorkload::new(1, 1, 1, Duration::ZERO, 64, 1, pools(1))
            .with_member_interval(Duration::from_millis(10))
            .with_shape(LoadShape::Diurnal {
                period: Duration::from_secs(10),
                trough: 5,
            });
        let at = |t: u64| w.effective_interval(0, Time(t)).unwrap();
        assert_eq!(at(0), Duration::from_millis(10), "peak at phase 0");
        assert_eq!(at(5_000_000_000), Duration::from_millis(50), "trough");
        assert_eq!(at(10_000_000_000), Duration::from_millis(10), "next peak");
        assert!(at(2_500_000_000) > at(0));
        assert!(at(2_500_000_000) < at(5_000_000_000));
    }

    #[test]
    fn regional_outage_fails_over_to_the_ring_successor() {
        let mempools = pools(2);
        // Replica 0 partitioned for the whole run: every submission must
        // land on replica 1, whatever the RNG draws.
        let mut w = CohortWorkload::new(8, 2, 1, Duration::ZERO, 64, 42, mempools.clone())
            .with_shape(LoadShape::RegionalOutage {
                at: Time::ZERO,
                duration: Duration::from_secs(3600),
                replica: 0,
            });
        w.prime(Time::ZERO);
        assert_eq!(mempools[0].lock().unwrap().len(), 0, "outage: no traffic");
        assert_eq!(mempools[1].lock().unwrap().len(), 8, "failover target");
    }

    #[test]
    fn retry_resubmits_with_original_timestamp() {
        let mempools = pools(1);
        let timeout = Duration::from_millis(10);
        let mut w = CohortWorkload::new(1, 1, 1, Duration::ZERO, 64, 1, mempools.clone())
            .with_retry(timeout);
        w.prime(Time::ZERO);
        let ticks = w.take_pending_retry_ticks();
        assert_eq!(ticks, vec![Time::ZERO + timeout]);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(w.handle_retry_tick(ticks[0]), 1);
        let back = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(back, drained, "identical request re-enters the pool");
    }

    #[test]
    fn reservoir_caps_per_cohort_memory() {
        let mempools = pools(1);
        let mut w = CohortWorkload::new(2_000, 2, 1, Duration::ZERO, 64, 7, mempools.clone());
        w.prime(Time::ZERO);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        assert_eq!(drained.len(), 2_000);
        for chunk in drained.chunks(100) {
            w.deliver(&commit_of(chunk.to_vec(), 5_000_000));
        }
        assert_eq!(w.completed(), 2_000);
        for c in 0..2 {
            let stats = w.cohort_stats(c);
            assert_eq!(stats.completed, 1_000);
            assert!(stats.latency_p50.is_some());
        }
        assert!(w.cohorts.iter().all(|c| c.reservoir.len() <= RESERVOIR_CAP));
    }

    #[test]
    fn frozen_population_stops_submitting() {
        let mempools = pools(1);
        let mut w = CohortWorkload::new(2, 1, 1, Duration::ZERO, 64, 1, mempools.clone());
        w.prime(Time::ZERO);
        let drained = mempools[0].lock().unwrap().drain(usize::MAX);
        w.deliver(&commit_of(drained, 1_000));
        w.freeze();
        let ticks = w.take_pending_ticks();
        assert_eq!(w.handle_tick(ticks[0]), 0, "frozen: no resubmission");
        assert_eq!(w.submitted(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> (u64, Vec<usize>) {
            let mempools = pools(4);
            let mut w =
                CohortWorkload::new(100_000, 32, 2, Duration::ZERO, 64, seed, mempools.clone())
                    .with_max_outstanding(1_000);
            w.prime(Time::ZERO);
            let lens = mempools.iter().map(|m| m.lock().unwrap().len()).collect();
            (w.submitted(), lens)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).1, run(4).1, "different seeds retarget");
    }
}
