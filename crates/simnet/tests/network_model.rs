//! Integration tests of the simulator's network model: the quantitative
//! behaviors the experiment harnesses rely on.

use banyan_core::builder::ClusterBuilder;
use banyan_simnet::faults::FaultPlan;
use banyan_simnet::sim::{SimConfig, Simulation};
use banyan_simnet::topology::Topology;
use banyan_types::engine::Engine;
use banyan_types::ids::ReplicaId;
use banyan_types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

fn banyan(n: usize, payload: u64, topo: Topology, seed: u64) -> Simulation {
    let delta = topo.max_one_way() + Duration::from_millis(5);
    let engines: Vec<Box<dyn Engine>> = ClusterBuilder::new(n, 1, 1)
        .unwrap()
        .delta(delta)
        .payload_size(payload)
        .build_banyan();
    Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(seed))
}

/// Latency must scale with payload size once serialization dominates:
/// broadcasting a B-byte block to n−1 peers costs (n−1)·8B/bandwidth on
/// the proposer's uplink before propagation even starts.
#[test]
fn latency_grows_with_payload_via_egress_serialization() {
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let mut small = banyan(4, 10_000, topo.clone(), 1);
    small.run_until(secs(10));
    let mut big = banyan(4, 2_000_000, topo, 1);
    big.run_until(secs(10));
    let small_ms = small.metrics().proposer_latency_stats().mean_ms;
    let big_ms = big.metrics().proposer_latency_stats().mean_ms;
    // 2 MB × 3 peers at 1 Gbit/s = 48 ms of serialization alone.
    assert!(
        big_ms > small_ms + 30.0,
        "2MB blocks ({big_ms:.1} ms) should cost ≫ 10KB blocks ({small_ms:.1} ms)"
    );
}

/// Throughput in committed bytes scales with block size (until
/// saturation), at roughly constant round rate.
#[test]
fn throughput_scales_with_block_size() {
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let tp = |payload: u64| {
        let mut sim = banyan(
            4,
            payload,
            Topology::uniform(4, Duration::from_millis(10)),
            2,
        );
        sim.run_until(secs(10));
        sim.metrics().throughput_bps(ReplicaId(0))
    };
    let t1 = tp(50_000);
    let t2 = tp(500_000);
    assert!(
        t2 > 5.0 * t1,
        "10x block size should give ≫5x throughput: {t1:.0} vs {t2:.0}"
    );
    let _ = topo;
}

/// A straggler link slows the fast path (which needs n − p = all-but-one
/// replicas) more than it slows the ICC slow path (which can use the
/// closest quorum) — the paper's core topology-sensitivity observation.
#[test]
fn straggler_hurts_fast_path_more_than_slow_path() {
    let run = |protocol: &str| {
        let topo = Topology::uniform(4, Duration::from_millis(10));
        let engines: Vec<Box<dyn Engine>> = ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(120))
            .payload_size(1_000)
            .build(protocol);
        // Replica 3 is 80 ms away from everyone (both directions).
        let mut faults = FaultPlan::none();
        for other in 0..3u16 {
            faults = faults
                .link_delay(
                    ReplicaId(3),
                    ReplicaId(other),
                    Duration::from_millis(70),
                    Time::ZERO,
                    secs(100),
                )
                .link_delay(
                    ReplicaId(other),
                    ReplicaId(3),
                    Duration::from_millis(70),
                    Time::ZERO,
                    secs(100),
                );
        }
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(3));
        sim.run_until(secs(15));
        assert!(sim.auditor().is_safe());
        sim.metrics().proposer_latency_stats().mean_ms
    };
    let banyan_ms = run("banyan");
    let icc_ms = run("icc");
    // With the straggler, Banyan's FP quorum includes replica 3, so its
    // advantage shrinks or inverts; it must at least lose its usual 33%
    // lead. (Banyan never does *worse* than its own slow path, which is
    // ICC — allow measurement noise.)
    assert!(
        banyan_ms > icc_ms * 0.66,
        "straggler should erode the fast-path advantage: banyan {banyan_ms:.1} vs icc {icc_ms:.1}"
    );
}

/// Zero-jitter runs are exactly reproducible and vary under different
/// jitter seeds.
#[test]
fn jitter_seeds_shift_latencies() {
    let run = |seed: u64| {
        let mut sim = banyan(4, 10_000, Topology::four_global_4(), seed);
        sim.run_until(secs(5));
        sim.metrics().proposer_latency_stats().mean_ms
    };
    let a = run(1);
    let b = run(1);
    let c = run(99);
    assert_eq!(a, b, "same seed, same mean");
    assert_ne!(a, c, "different seed should shift jitter");
}

/// The paper's three testbeds produce ordered latencies: US < 4-global
/// clustered < 19-datacenter global (for the same protocol and payload).
#[test]
fn testbed_ordering_matches_geography() {
    let run = |topo: Topology| {
        let n = topo.n();
        let delta = topo.max_one_way() + Duration::from_millis(5);
        let engines: Vec<Box<dyn Engine>> = ClusterBuilder::new(n, 6, 1)
            .unwrap()
            .delta(delta)
            .payload_size(10_000)
            .build_banyan();
        let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(4));
        sim.run_until(secs(10));
        assert!(sim.auditor().is_safe());
        sim.metrics().proposer_latency_stats().mean_ms
    };
    let us = run(Topology::four_us_19());
    let global4 = run(Topology::four_global_19());
    let global19 = run(Topology::nineteen_global());
    assert!(
        us < global4,
        "US testbed ({us:.1}) should beat 4-global ({global4:.1})"
    );
    assert!(
        global4 < global19 * 1.2,
        "4-global ({global4:.1}) ≲ 19-global ({global19:.1})"
    );
}
