//! Property tests for the cohort-aggregated workload: with one member
//! per cohort (`K = clients`), no pacing and the default admission cap,
//! [`CohortWorkload`] must replay [`ClosedLoopWorkload`]'s submission
//! stream **bit-for-bit** — same RNG draws, same request ids, same pool
//! contents, same resume ticks. The aggregate model is a strict
//! generalization of the per-client one, not a lookalike that can drift.

use proptest::prelude::*;

use banyan_simnet::cohort::CohortWorkload;
use banyan_simnet::workload::{ClosedLoopWorkload, Mempool, SharedMempool, WorkloadBatch};
use banyan_types::app::App;
use banyan_types::engine::CommitEntry;
use banyan_types::ids::{BlockHash, ReplicaId, Round};
use banyan_types::message::PendingRequest;
use banyan_types::time::{Duration, Time};

fn pools(n: usize) -> Vec<SharedMempool> {
    (0..n).map(|_| Mempool::shared(1 << 20)).collect()
}

fn drain_all(mempools: &[SharedMempool]) -> Vec<Vec<PendingRequest>> {
    mempools
        .iter()
        .map(|m| m.lock().expect("mempool lock").drain(usize::MAX))
        .collect()
}

fn commit_of(requests: Vec<PendingRequest>, at: Time) -> CommitEntry {
    CommitEntry {
        round: Round(1),
        block: BlockHash::ZERO,
        proposer: ReplicaId(0),
        payload: WorkloadBatch { requests }.into_payload(),
        proposed_at: Time::ZERO,
        committed_at: at,
        fast: false,
        explicit: true,
    }
}

proptest! {
    /// The equivalence property: prime both populations, then run a few
    /// commit → tick rounds, delivering the same commits to both. At
    /// every step the pool contents, the pending ticks and the submit
    /// counters must be identical.
    #[test]
    fn cohort_at_one_member_each_matches_closed_loop(
        clients in 1u16..12,
        window in 1u32..4,
        n_pools in 1usize..5,
        seed in any::<u64>(),
        think_ms in 0u64..8,
        rounds in 1usize..6,
    ) {
        let think = Duration::from_millis(think_ms);
        let size = 200;
        let closed_pools = pools(n_pools);
        let cohort_pools = pools(n_pools);
        let mut closed =
            ClosedLoopWorkload::new(clients, window, think, size, seed, closed_pools.clone());
        let mut cohort = CohortWorkload::new(
            clients as u64,
            clients,
            window,
            think,
            size,
            seed,
            cohort_pools.clone(),
        );
        prop_assert_eq!(closed.prime(Time::ZERO), cohort.prime(Time::ZERO));
        prop_assert_eq!(cohort.max_in_flight(), closed.max_in_flight());

        let mut now = Time::ZERO;
        for round in 0..rounds {
            // Both sides must have produced identical pool contents; the
            // drain doubles as this round's "proposal".
            let closed_drained = drain_all(&closed_pools);
            let cohort_drained = drain_all(&cohort_pools);
            prop_assert_eq!(&closed_drained, &cohort_drained, "round {} pools", round);

            // Commit half of each replica's drained requests (integer
            // truncation keeps some requests in flight across rounds).
            now += Duration::from_millis(10);
            for drained in closed_drained {
                let keep = drained.len().div_ceil(2);
                closed.deliver(&commit_of(drained[..keep].to_vec(), now));
                cohort.deliver(&commit_of(drained[..keep].to_vec(), now));
            }
            let closed_ticks = closed.take_pending_ticks();
            let cohort_ticks = cohort.take_pending_ticks();
            prop_assert_eq!(&closed_ticks, &cohort_ticks, "round {} ticks", round);

            // Fire every tick in schedule order: one resubmission each.
            let mut ticks = closed_ticks;
            ticks.sort_unstable();
            for at in ticks {
                let resubmitted = closed.resubmit_next(at).is_some();
                prop_assert_eq!(cohort.handle_tick(at), u64::from(resubmitted));
            }
            prop_assert_eq!(closed.submitted(), cohort.submitted());
            prop_assert_eq!(closed.completed(), cohort.completed());
            prop_assert_eq!(closed.in_flight(), cohort.in_flight());
            prop_assert_eq!(cohort.deferred_demand(), 0, "no pacing: no demand");
        }
    }

    /// Retransmission equivalence: the retry stream (deadline order, RNG
    /// draws, re-pushed requests) must also match.
    #[test]
    fn cohort_retry_stream_matches_closed_loop(
        clients in 1u16..8,
        n_pools in 1usize..4,
        seed in any::<u64>(),
    ) {
        let timeout = Duration::from_millis(50);
        let closed_pools = pools(n_pools);
        let cohort_pools = pools(n_pools);
        let mut closed = ClosedLoopWorkload::new(
            clients,
            2,
            Duration::ZERO,
            100,
            seed,
            closed_pools.clone(),
        )
        .with_retry(timeout);
        let mut cohort = CohortWorkload::new(
            clients as u64,
            clients,
            2,
            Duration::ZERO,
            100,
            seed,
            cohort_pools.clone(),
        )
        .with_retry(timeout);
        prop_assert_eq!(closed.prime(Time::ZERO), cohort.prime(Time::ZERO));
        prop_assert_eq!(
            closed.take_pending_retry_ticks(),
            cohort.take_pending_retry_ticks()
        );
        // Nothing commits; every in-flight request retries.
        drain_all(&closed_pools);
        drain_all(&cohort_pools);
        let at = Time::ZERO + timeout;
        prop_assert_eq!(closed.handle_retry_tick(at), cohort.handle_retry_tick(at));
        prop_assert_eq!(closed.retries(), cohort.retries());
        prop_assert_eq!(drain_all(&closed_pools), drain_all(&cohort_pools));
    }
}

/// Determinism per seed at an aggregate scale no per-client workload
/// could hold: two runs with the same seed submit the same stream; a
/// different seed retargets it.
#[test]
fn cohort_population_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mempools = pools(4);
        let mut w = CohortWorkload::new(
            1_000_000,
            64,
            4,
            Duration::ZERO,
            256,
            seed,
            mempools.clone(),
        )
        .with_max_outstanding(2_048)
        .with_member_interval(Duration::from_secs(30));
        let mut submitted = w.prime(Time::ZERO);
        let mut now = Time::ZERO;
        for _ in 0..50 {
            let mut ticks = w.take_pending_ticks();
            ticks.sort_unstable();
            for at in ticks {
                now = now.max(at);
                submitted += w.handle_tick(at);
            }
            let drained = drain_all(&mempools);
            now += Duration::from_millis(5);
            for d in drained {
                w.deliver(&commit_of(d, now));
            }
        }
        // One more tick round *without* a drain, so the per-pool fill
        // reflects the seed's targeting draws.
        let mut ticks = w.take_pending_ticks();
        ticks.sort_unstable();
        for at in ticks {
            submitted += w.handle_tick(at);
        }
        let lens: Vec<usize> = mempools
            .iter()
            .map(|m| m.lock().expect("mempool lock").len())
            .collect();
        (submitted, w.completed(), lens)
    };
    assert_eq!(run(7), run(7), "same seed, same stream");
    assert_ne!(run(7).2, run(8).2, "different seeds retarget");
}
