//! Workspace-level integration tests, exercised through the `banyan`
//! facade exactly as a downstream user would.

use std::sync::Arc;

use banyan::core::builder::ClusterBuilder;
use banyan::crypto::schnorr::ToySchnorr;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

#[test]
fn all_protocols_run_on_the_global_testbed() {
    for protocol in ["banyan", "icc", "hotstuff", "streamlet"] {
        let topo = Topology::nineteen_global();
        let delta = topo.max_one_way() + Duration::from_millis(10);
        let engines = ClusterBuilder::new(19, 6, 1)
            .unwrap()
            .delta(delta)
            .payload_size(50_000)
            .build(protocol);
        let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(17));
        sim.run_until(secs(10));
        assert!(
            sim.auditor().is_safe(),
            "{protocol}: {:?}",
            sim.auditor().violations()
        );
        assert!(
            sim.auditor().committed_rounds() > 3,
            "{protocol}: only {} rounds",
            sim.auditor().committed_rounds()
        );
    }
}

#[test]
fn publicly_verifiable_schnorr_scheme_end_to_end() {
    // Swap the HMAC stand-in for the structurally real Schnorr scheme and
    // run the full protocol with signature verification on.
    let topo = Topology::uniform(4, Duration::from_millis(10));
    let engines = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .scheme(Arc::new(ToySchnorr::new()))
        .delta(Duration::from_millis(20))
        .payload_size(1_000)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(23));
    sim.run_until(secs(5));
    assert!(sim.auditor().is_safe());
    assert!(sim.auditor().committed_rounds() > 20);
}

#[test]
fn seeded_beacon_schedule_end_to_end() {
    let topo = Topology::uniform(5, Duration::from_millis(10));
    let engines = ClusterBuilder::new(5, 1, 1)
        .unwrap()
        .seeded_beacon(99)
        .delta(Duration::from_millis(20))
        .payload_size(1_000)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(29));
    sim.run_until(secs(5));
    assert!(sim.auditor().is_safe());
    assert!(sim.auditor().committed_rounds() > 20);
}

#[test]
fn simulation_and_tcp_agree_on_chain_content() {
    // The same engines run under the simulator and over loopback TCP.
    // Both must be safe and make progress; chains won't be identical
    // (different timing) but every committed round must be internally
    // consistent in each world.
    let build = || {
        ClusterBuilder::new(4, 1, 1)
            .unwrap()
            .delta(Duration::from_millis(30))
            .payload_size(256)
            .build_banyan()
    };

    // Simulated world.
    let topo = Topology::uniform(4, Duration::from_millis(5));
    let mut sim = Simulation::new(topo, build(), FaultPlan::none(), SimConfig::with_seed(31));
    sim.run_until(secs(3));
    assert!(sim.auditor().is_safe());
    assert!(sim.auditor().committed_rounds() > 10);

    // Real-socket world.
    let reports = banyan::transport::run_local_cluster(build(), std::time::Duration::from_secs(3));
    let mut canonical = std::collections::HashMap::new();
    let mut commits = 0;
    for r in &reports {
        for c in &r.commits {
            commits += 1;
            if let Some(prev) = canonical.insert(c.round, c.block) {
                assert_eq!(prev, c.block, "TCP world disagreed at round {}", c.round);
            }
        }
    }
    assert!(commits > 10, "TCP world committed only {commits}");
}

#[test]
fn forwarding_off_still_finalizes() {
    let topo = Topology::four_global_4();
    let engines = ClusterBuilder::new(4, 1, 1)
        .unwrap()
        .delta(topo.max_one_way() + Duration::from_millis(5))
        .payload_size(10_000)
        .forwarding(false)
        .build_banyan();
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(37));
    sim.run_until(secs(10));
    assert!(sim.auditor().is_safe());
    assert!(sim.auditor().committed_rounds() > 10);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes the full API surface.
    use banyan::core::model::render_table1;
    use banyan::crypto::sha256::sha256;
    use banyan::types::config::ProtocolConfig;

    let cfg = ProtocolConfig::new(19, 6, 1).unwrap();
    assert_eq!(cfg.fast_quorum(), 18);
    assert_eq!(sha256(b"").len(), 32);
    assert!(render_table1(6, 1).contains("Banyan"));
}
