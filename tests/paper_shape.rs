//! Shape-regression tests: the paper's qualitative results, pinned in CI.
//!
//! These run scaled-down versions of the headline experiments and assert
//! the *orderings* the paper reports (not absolute numbers). If a
//! refactoring of the engines or the network model breaks one of these,
//! the reproduction has regressed.

use banyan::core::builder::ClusterBuilder;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::engine::Engine;
use banyan::types::time::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(Duration::from_secs(s).as_nanos())
}

fn mean_latency(protocol: &str, topo: Topology, f: usize, p: usize, payload: u64) -> f64 {
    let n = topo.n();
    let delta = topo.max_one_way() + Duration::from_millis(10);
    let engines: Vec<Box<dyn Engine>> = ClusterBuilder::new(n, f, p)
        .unwrap()
        .delta(delta)
        .payload_size(payload)
        .build(protocol);
    let mut sim = Simulation::new(topo, engines, FaultPlan::none(), SimConfig::with_seed(42));
    sim.run_until(secs(15));
    assert!(sim.auditor().is_safe(), "{protocol} unsafe");
    let stats = sim.metrics().proposer_latency_stats();
    assert!(
        stats.count > 10,
        "{protocol}: too few samples ({})",
        stats.count
    );
    stats.mean_ms
}

/// Fig. 6b's ordering at 1 MB, n = 4 global: Banyan < ICC < Streamlet and
/// Banyan < ICC < HotStuff.
#[test]
fn fig6b_ordering_banyan_beats_icc_beats_baselines() {
    let banyan = mean_latency("banyan", Topology::four_global_4(), 1, 1, 1_000_000);
    let icc = mean_latency("icc", Topology::four_global_4(), 1, 1, 1_000_000);
    let hotstuff = mean_latency("hotstuff", Topology::four_global_4(), 1, 1, 1_000_000);
    let streamlet = mean_latency("streamlet", Topology::four_global_4(), 1, 1, 1_000_000);
    assert!(banyan < icc, "banyan {banyan:.1} !< icc {icc:.1}");
    assert!(icc < streamlet, "icc {icc:.1} !< streamlet {streamlet:.1}");
    assert!(icc < hotstuff, "icc {icc:.1} !< hotstuff {hotstuff:.1}");
    // The improvement is substantial (paper: ~30%; accept ≥ 10%).
    let improvement = (icc - banyan) / icc;
    assert!(
        improvement > 0.10,
        "improvement only {:.1}%",
        improvement * 100.0
    );
}

/// Fig. 6a/6e's p-effect at n = 19: p = 4 is at least as fast as p = 1,
/// and both beat ICC.
#[test]
fn p4_beats_p1_beats_icc_at_n19() {
    let p1 = mean_latency("banyan", Topology::four_global_19(), 6, 1, 200_000);
    let p4 = mean_latency("banyan", Topology::four_global_19(), 4, 4, 200_000);
    let icc = mean_latency("icc", Topology::four_global_19(), 6, 1, 200_000);
    assert!(p1 < icc, "banyan p=1 {p1:.1} !< icc {icc:.1}");
    assert!(
        p4 <= p1 * 1.02,
        "banyan p=4 {p4:.1} should be ≤ p=1 {p1:.1}"
    );
}

/// Fig. 6d's core claim: under crashes, Banyan's throughput equals ICC's
/// (within 2%).
#[test]
fn banyan_equals_icc_under_crashes() {
    let run = |protocol: &str| {
        let topo = Topology::four_us_19();
        let engines: Vec<Box<dyn Engine>> = ClusterBuilder::new(19, 6, 1)
            .unwrap()
            .delta(Duration::from_millis(500))
            .payload_size(50_000)
            .build(protocol);
        let faults = FaultPlan::none().crash_spread(4, 19, Time::ZERO);
        let mut sim = Simulation::new(topo, engines, faults, SimConfig::with_seed(42));
        sim.run_until(secs(20));
        assert!(sim.auditor().is_safe());
        sim.auditor().committed_rounds() as f64
    };
    let banyan = run("banyan");
    let icc = run("icc");
    assert!(
        (banyan - icc).abs() / icc < 0.02,
        "banyan {banyan} rounds vs icc {icc} rounds under crashes"
    );
}

/// Table 1 / Fig. 1: the 2δ vs 3δ step counts, the paper's central claim.
#[test]
fn two_delta_vs_three_delta() {
    let one_way = 40.0;
    let banyan = mean_latency(
        "banyan",
        Topology::uniform(4, Duration::from_millis(40)),
        1,
        1,
        1_000,
    );
    let icc = mean_latency(
        "icc",
        Topology::uniform(4, Duration::from_millis(40)),
        1,
        1,
        1_000,
    );
    let b_steps = banyan / one_way;
    let i_steps = icc / one_way;
    assert!((1.9..2.4).contains(&b_steps), "banyan steps {b_steps:.2}");
    assert!((2.9..3.4).contains(&i_steps), "icc steps {i_steps:.2}");
}
