//! # Banyan: Fast Rotating Leader BFT — facade crate
//!
//! Re-exports the public API of the whole workspace. See the individual
//! crates for details:
//!
//! * [`banyan_core`] — the Banyan protocol plus the ICC, HotStuff and
//!   Streamlet engines.
//! * [`banyan_runtime`] — the shared engine-driver layer (deterministic
//!   event/timer queue, action routing, commit sinks) every deployment
//!   drives engines through.
//! * [`banyan_mempool`] — the request-dissemination layer: shared
//!   mempools, batch encoding, pending-request gossip, exactly-once
//!   commit dedup.
//! * [`banyan_simnet`] — deterministic discrete-event WAN simulator.
//! * [`banyan_types`] — blocks, votes, certificates, wire codec.
//! * [`banyan_crypto`] — hashes, multi-signatures, PKI, beacon.
//! * [`banyan_transport`] — threaded TCP deployment of the same engines.

pub use banyan_core as core;
pub use banyan_crypto as crypto;
pub use banyan_mempool as mempool;
pub use banyan_runtime as runtime;
pub use banyan_simnet as simnet;
pub use banyan_storage as storage;
pub use banyan_transport as transport;
pub use banyan_types as types;
