//! Offline stand-in for the crates.io `rand` crate.
//!
//! The workspace builds without network access, so this crate provides the
//! small API subset the repo actually uses: [`rngs::SmallRng`] (the same
//! xoshiro256++ generator real `rand 0.8` uses on 64-bit targets, seeded
//! via SplitMix64 like `SeedableRng::seed_from_u64`), the [`Rng`] extension
//! trait with `gen_range`, and [`SeedableRng`]. Determinism is the only
//! contract callers rely on: same seed ⇒ same stream.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as u64 {
                    return start + rng.next_u64() as $t;
                }
                start + mul_shift(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Maps a uniform 64-bit word onto `[0, span)` by widening multiply
/// (Lemire's method without the rejection step; bias is ≤ 2⁻⁶⁴·span,
/// irrelevant for simulation jitter).
fn mul_shift(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Not cryptographically secure; fast and
    /// deterministic, which is all the simulator needs.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as rand_core does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1_000_000), b.gen_range(0u64..=1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1 << 40)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }
}
