//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, `any::<T>()`,
//! integer-range strategies, tuple composition, [`collection::vec`],
//! [`collection::btree_set`], [`option::of`], `prop_oneof!`, and the
//! `proptest!` test macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message; rerunning is deterministic (the RNG seed is a
//!   hash of the test name), so failures reproduce exactly.
//! * **Fixed seeding.** There is no persistence file; every run explores
//!   the same cases, which suits CI determinism.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The per-test RNG and configuration.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SampleRange, SeedableRng};

    /// Deterministic per-test random source.
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds from a test name (FNV-1a) so each test explores its own
        /// stream but every run of that test explores the same one.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from an integer range.
        pub fn sample<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            range.sample(&mut self.0)
        }

        /// Uniform index below `n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            self.sample(0..n)
        }

        /// Fills a byte slice.
        pub fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest);
        }
    }

    /// Test-loop configuration (the `cases` knob is the one tests use).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub use test_runner::{ProptestConfig, TestRng};

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy for [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`: `any::<u64>()`, `any::<[u8; 32]>()`, …
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from the macro's boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact, half-open or inclusive.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                rng.sample(self.min..=self.max)
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with a size drawn from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<E::Value>` targeting a size in `size`
    /// (smaller if the element domain cannot supply enough distinct
    /// values within a bounded number of draws).
    pub fn btree_set<E: Strategy>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
    where
        E::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for BTreeSetStrategy<E>
    where
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// 50/50 `Some`/`None` over the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boxes one `prop_oneof!` arm. A generic function (not an `as` cast) so
/// type inference unifies integer literals across arms — `Just((7, 2, 1))`
/// infers `usize` from a `Just((4usize, …))` sibling.
#[doc(hidden)]
pub fn __push_oneof_arm<T, S: Strategy<Value = T> + 'static>(
    arms: &mut Vec<BoxedStrategy<T>>,
    strategy: S,
) {
    arms.push(Box::new(strategy));
}

/// Chooses uniformly among strategies that all yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut arms = Vec::new();
        $($crate::__push_oneof_arm(&mut arms, $strategy);)+
        $crate::OneOf::new(arms)
    }};
}

/// Asserts inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Skipped cases still count toward the case budget, which keeps runs
/// bounded; preconditions in this workspace hold for almost all inputs.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($($strategy,)+);
                for __case in 0..config.cases {
                    let _ = __case;
                    #[allow(non_snake_case)]
                    let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    // A closure so `prop_assume!` can skip the case by
                    // returning early.
                    (|| $body)();
                }
            }
        )*
    };
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Re-export so `proptest::strategy::Strategy` paths also work.
pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, OneOf, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = crate::TestRng::deterministic("compose");
        let s = (0u16..10, 5u64..=6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::deterministic("sizes");
        let v = crate::collection::vec(any::<u8>(), 3..5);
        let s = crate::collection::btree_set(0u16..100, 1..10);
        for _ in 0..50 {
            let val = v.generate(&mut rng);
            assert!(val.len() >= 3 && val.len() < 5);
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(x in 0u64..1000, flip in any::<bool>()) {
            prop_assume!(x != 999);
            let doubled = x * 2;
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 2000, "x={x} flip={flip}");
        }
    }
}
