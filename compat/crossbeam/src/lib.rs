//! Offline stand-in for the crates.io `crossbeam` crate.
//!
//! Only [`channel`] is provided. Unlike the earlier stand-in (which
//! wrapped `std::sync::mpsc::SyncSender` and was therefore single-
//! consumer), this is a real **MPMC** channel: both [`channel::Sender`]
//! and [`channel::Receiver`] are cloneable, any number of threads may
//! send and receive concurrently, and `try_send`/`try_recv` take a
//! lock-free fast path for the full/empty cases (an atomic length check
//! fails fast without touching the queue mutex — the property the
//! mempool ingest hot path relies on under contention).

pub mod channel {
    //! Bounded MPMC channels.
    //!
    //! Semantics match the `crossbeam-channel` subset the workspace uses:
    //! bounded capacity, cloneable senders **and receivers**, blocking
    //! `recv`/`recv_timeout`, non-blocking `try_send`/`try_recv`, and
    //! `try_iter` for drain-style consumption. Disconnection is
    //! bidirectional: a channel closes when every `Sender` is dropped
    //! (receivers then drain the remainder and see `Disconnected`) or
    //! when every `Receiver` is dropped (senders see `Disconnected`
    //! immediately).

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Shared channel state. The queue lives under one mutex; `len` is
    /// mirrored in an atomic so full/empty checks on the hot paths can
    /// fail fast without taking the lock.
    struct Core<T> {
        queue: Mutex<VecDeque<T>>,
        /// Mirror of `queue.len()`, written under the queue lock but
        /// readable without it (the lock-free fast path).
        len: AtomicUsize,
        cap: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Signalled when a value arrives or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when a value leaves or all receivers disconnect.
        not_full: Condvar,
    }

    impl<T> Core<T> {
        fn sender_connected(&self) -> bool {
            self.senders.load(Ordering::Acquire) > 0
        }

        fn receiver_connected(&self) -> bool {
            self.receivers.load(Ordering::Acquire) > 0
        }
    }

    /// Cloneable producer half.
    pub struct Sender<T>(Arc<Core<T>>);

    /// Cloneable consumer half (true MPMC: clones share one queue, each
    /// value is received exactly once).
    pub struct Receiver<T>(Arc<Core<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: take the lock so the count change is
                // ordered against any receiver mid-wait, then wake them
                // all to observe the disconnect.
                let _guard = self.0.queue.lock().expect("channel lock");
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = self.0.queue.lock().expect("channel lock");
                self.0.not_full.notify_all();
            }
        }
    }

    /// Creates a bounded channel of capacity `cap` (clamped to ≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let core = Arc::new(Core {
            queue: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            len: AtomicUsize::new(0),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(core.clone()), Receiver(core))
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room (or every receiver is gone).
        ///
        /// # Errors
        ///
        /// Returns the value back if all receivers disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let core = &*self.0;
            let mut queue = core.queue.lock().expect("channel lock");
            loop {
                if !core.receiver_connected() {
                    return Err(SendError(value));
                }
                if queue.len() < core.cap {
                    queue.push_back(value);
                    core.len.store(queue.len(), Ordering::Release);
                    core.not_empty.notify_one();
                    return Ok(());
                }
                queue = core.not_full.wait(queue).expect("channel lock");
            }
        }

        /// Fails immediately if the queue is full or disconnected. The
        /// full check reads the atomic length mirror first, so a send
        /// against a full queue returns without ever taking the lock —
        /// the contended-ingest fast path. (The mirror can be momentarily
        /// stale; a stale read only yields a spurious `Full` for a queue
        /// that *was* full an instant ago, which a try-operation permits.)
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when at capacity,
        /// [`TrySendError::Disconnected`] when all receivers are gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let core = &*self.0;
            if core.len.load(Ordering::Acquire) >= core.cap {
                return if core.receiver_connected() {
                    Err(TrySendError::Full(value))
                } else {
                    Err(TrySendError::Disconnected(value))
                };
            }
            let mut queue = core.queue.lock().expect("channel lock");
            if !core.receiver_connected() {
                return Err(TrySendError::Disconnected(value));
            }
            if queue.len() >= core.cap {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            core.len.store(queue.len(), Ordering::Release);
            core.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is empty and every sender
        /// disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let core = &*self.0;
            let mut queue = core.queue.lock().expect("channel lock");
            loop {
                if let Some(value) = queue.pop_front() {
                    core.len.store(queue.len(), Ordering::Release);
                    core.not_full.notify_one();
                    return Ok(value);
                }
                if !core.sender_connected() {
                    return Err(RecvError);
                }
                queue = core.not_empty.wait(queue).expect("channel lock");
            }
        }

        /// Blocks for at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] when drained and all
        /// senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let core = &*self.0;
            let deadline = Instant::now() + timeout;
            let mut queue = core.queue.lock().expect("channel lock");
            loop {
                if let Some(value) = queue.pop_front() {
                    core.len.store(queue.len(), Ordering::Release);
                    core.not_full.notify_one();
                    return Ok(value);
                }
                if !core.sender_connected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = core
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock");
                queue = guard;
            }
        }

        /// Non-blocking receive. The empty check reads the atomic length
        /// mirror first, so polling an empty channel never contends on
        /// the lock.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when drained and all senders
        /// are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let core = &*self.0;
            if core.len.load(Ordering::Acquire) == 0 {
                if core.sender_connected() {
                    return Err(TryRecvError::Empty);
                }
                // Senders are gone, but a value may have landed before
                // the last disconnect: confirm under the lock.
                let mut queue = core.queue.lock().expect("channel lock");
                return match queue.pop_front() {
                    Some(value) => {
                        core.len.store(queue.len(), Ordering::Release);
                        Ok(value)
                    }
                    None => Err(TryRecvError::Disconnected),
                };
            }
            let mut queue = core.queue.lock().expect("channel lock");
            match queue.pop_front() {
                Some(value) => {
                    core.len.store(queue.len(), Ordering::Release);
                    core.not_full.notify_one();
                    Ok(value)
                }
                None if core.sender_connected() => Err(TryRecvError::Empty),
                None => Err(TryRecvError::Disconnected),
            }
        }

        /// A non-blocking draining iterator: yields queued values until
        /// the channel is momentarily empty, then stops (it never blocks
        /// waiting for new sends). This is the drain-at-observation-point
        /// primitive the mempool ingest path uses.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of values currently queued (a snapshot; other
        /// receivers may take them first).
        pub fn len(&self) -> usize {
            self.0.len.load(Ordering::Acquire)
        }

        /// True when nothing is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;
        use std::thread;

        #[test]
        fn bounded_roundtrip_and_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
            assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = bounded::<u32>(16);
            let tx2 = tx.clone();
            let h = thread::spawn(move || tx2.send(7).unwrap());
            tx.send(8).unwrap();
            h.join().unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![7, 8]);
        }

        #[test]
        fn receivers_clone_and_share_one_queue() {
            let (tx, rx) = bounded::<u32>(64);
            let rx2 = rx.clone();
            for v in 0..10 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let a: Vec<u32> = (0..5).map(|_| rx.recv().unwrap()).collect();
            let b: Vec<u32> = (0..5).map(|_| rx2.recv().unwrap()).collect();
            let all: HashSet<u32> = a.iter().chain(b.iter()).copied().collect();
            assert_eq!(all.len(), 10, "exactly-once across both receivers");
            assert!(matches!(rx.recv(), Err(RecvError)));
        }

        #[test]
        fn contended_mpmc_delivers_each_value_exactly_once() {
            const PRODUCERS: usize = 4;
            const CONSUMERS: usize = 3;
            const PER_PRODUCER: usize = 2_000;
            let (tx, rx) = bounded::<u64>(8); // tiny cap: force contention
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..PER_PRODUCER {
                            // Mix blocking and spinning sends.
                            let v = (p * PER_PRODUCER + i) as u64;
                            if i % 2 == 0 {
                                tx.send(v).unwrap();
                            } else {
                                let mut v = v;
                                loop {
                                    match tx.try_send(v) {
                                        Ok(()) => break,
                                        Err(TrySendError::Full(back)) => {
                                            v = back;
                                            thread::yield_now();
                                        }
                                        Err(TrySendError::Disconnected(_)) => {
                                            panic!("receivers vanished")
                                        }
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            drop(tx); // consumers stop once producers finish and drain
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all = Vec::new();
            for c in consumers {
                all.extend(c.join().unwrap());
            }
            assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "no loss");
            let unique: HashSet<u64> = all.iter().copied().collect();
            assert_eq!(unique.len(), all.len(), "no duplication");
        }

        #[test]
        fn try_iter_drains_without_blocking() {
            let (tx, rx) = bounded::<u32>(16);
            for v in 0..5 {
                tx.send(v).unwrap();
            }
            let drained: Vec<u32> = rx.try_iter().collect();
            assert_eq!(drained, vec![0, 1, 2, 3, 4]);
            // Channel still open: try_iter just stops on empty.
            assert_eq!(rx.try_iter().count(), 0);
            tx.send(9).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![9]);
        }

        #[test]
        fn send_to_dropped_receivers_disconnects() {
            let (tx, rx) = bounded::<u32>(4);
            drop(rx);
            assert!(matches!(tx.send(1), Err(SendError(1))));
            assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
        }

        #[test]
        fn receivers_drain_after_all_senders_drop() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn blocked_receiver_wakes_on_last_sender_drop() {
            let (tx, rx) = bounded::<u32>(4);
            let h = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert!(h.join().unwrap().is_err());
        }
    }
}
