//! Offline stand-in for the crates.io `crossbeam` crate.
//!
//! Only [`channel`] is provided, implemented over `std::sync::mpsc`. The
//! semantics the transport relies on hold: bounded capacity, cloneable
//! senders, blocking `recv`, `recv_timeout` and non-blocking `try_send`.

pub mod channel {
    //! Bounded MPSC channels (std-backed).

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TrySendError};

    /// Cloneable producer half.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Consumer half (single consumer, as in the transport's event loop).
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue room.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Fails immediately if the queue is full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
            assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = bounded::<u32>(16);
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || tx2.send(7).unwrap());
            tx.send(8).unwrap();
            h.join().unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![7, 8]);
        }
    }
}
