//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! adaptive timing loop instead of criterion's statistical machinery.
//! Results print as `name ... time/iter`, enough to compare hot paths
//! locally; there is no HTML report and no regression store.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench wall-clock budget. Chosen so `cargo bench` over the whole
/// experiment matrix stays in minutes, not hours.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// The top-level harness handle.
pub struct Criterion {
    /// Measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: MEASURE_BUDGET,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, for `criterion_group!`
    /// compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.budget, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            budget: self.budget,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion knob; accepted for compatibility, unused here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion knob; accepted for compatibility, unused here.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Shrinks or grows this group's per-bench budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d.min(MEASURE_BUDGET);
        self
    }

    /// Records the throughput denominator (printed alongside timings).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.budget, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new<S: Display, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput denominators (accepted for API compatibility).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    budget: Duration,
    /// (total elapsed, iterations) recorded by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, adapting the iteration count to the budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up; also reveals single-iteration scale.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "bench {name:<48} {:>12} /iter ({iters} iters)",
                format_ns(per_iter)
            );
        }
        None => println!("bench {name:<48} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group-runner function, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, payload);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
