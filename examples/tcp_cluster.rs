//! Run a real Banyan cluster over TCP on localhost — the same engines the
//! simulator drives, now on actual sockets with one OS thread per peer
//! connection.
//!
//! ```sh
//! cargo run --release --example tcp_cluster
//! ```

use banyan::core::builder::ClusterBuilder;
use banyan::transport::run_local_cluster;
use banyan::types::time::Duration;

fn main() {
    let engines = ClusterBuilder::new(4, 1, 1)
        .expect("valid parameters")
        .delta(Duration::from_millis(50))
        .payload_size(4096)
        .build_banyan();

    println!("running 4 Banyan replicas over loopback TCP for 5 s ...");
    let reports = run_local_cluster(engines, std::time::Duration::from_secs(5));

    // Cross-check agreement across replicas.
    let mut canonical = std::collections::HashMap::new();
    let mut disagreements = 0usize;
    for r in &reports {
        for c in &r.commits {
            if let Some(prev) = canonical.insert(c.round, c.block) {
                if prev != c.block {
                    disagreements += 1;
                }
            }
        }
    }

    for (i, r) in reports.iter().enumerate() {
        let own: Vec<_> = r
            .commits
            .iter()
            .filter(|c| c.proposer.as_usize() == i && c.explicit)
            .collect();
        let mean_ms = if own.is_empty() {
            f64::NAN
        } else {
            own.iter()
                .map(|c| c.committed_at.since(c.proposed_at).as_millis_f64())
                .sum::<f64>()
                / own.len() as f64
        };
        println!(
            "  replica {i}: {} commits, {} rx / {} tx msgs, own-block latency {:.1} ms",
            r.commits.len(),
            r.messages_received,
            r.messages_sent,
            mean_ms
        );
    }
    assert_eq!(disagreements, 0, "replicas disagreed on a round!");
    println!("all replicas agree on every finalized round");
}
