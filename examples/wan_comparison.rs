//! Compare all four protocols — Banyan, ICC, HotStuff, Streamlet — on the
//! paper's 19-replica global testbed, like Fig. 6a's 400 KB column.
//!
//! ```sh
//! cargo run --release --example wan_comparison
//! ```

use banyan::core::builder::ClusterBuilder;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::ids::ReplicaId;
use banyan::types::time::{Duration, Time};

fn main() {
    let secs = 20u64;
    println!("n=19 replicas across 4 global datacenters, 400 KB blocks, {secs}s simulated\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8}",
        "protocol", "lat.mean", "lat.p90", "MB/s", "fast%"
    );

    for (label, protocol, f, p) in [
        ("banyan (f=6,p=1)", "banyan", 6usize, 1usize),
        ("banyan (f=4,p=4)", "banyan", 4, 4),
        ("icc (f=6)", "icc", 6, 1),
        ("hotstuff (f=6)", "hotstuff", 6, 1),
        ("streamlet (f=6)", "streamlet", 6, 1),
    ] {
        let topology = Topology::four_global_19();
        let delta = topology.max_one_way() + Duration::from_millis(10);
        let engines = ClusterBuilder::new(19, f, p)
            .expect("valid parameters")
            .delta(delta)
            .payload_size(400_000)
            .build(protocol);
        let mut sim = Simulation::new(
            topology,
            engines,
            FaultPlan::none(),
            SimConfig::with_seed(7),
        );
        sim.run_until(Time(Duration::from_secs(secs).as_nanos()));
        assert!(sim.auditor().is_safe());
        let m = sim.metrics();
        let lat = m.proposer_latency_stats();
        println!(
            "{:<18} {:>8.1}ms {:>8.1}ms {:>10.2} {:>7.0}%",
            label,
            lat.mean_ms,
            lat.p90_ms,
            m.throughput_bps(ReplicaId(0)) / 1e6,
            m.fast_path_share(ReplicaId(0)) * 100.0
        );
    }
    println!("\n(paper §9.3: Banyan p=1 ≈ −10% vs ICC, Banyan p=4 ≈ −25% vs ICC at 400 KB)");
}
