//! Drive a Banyan cluster from an **open-loop client workload** instead of
//! the paper's leader-minted payloads: a seeded client population submits
//! requests into per-replica mempools, proposers drain them into blocks,
//! and the run reports end-to-end (submit→commit) latency alongside the
//! paper's proposer-measured latency.
//!
//! ```sh
//! cargo run --release --example client_workload
//! ```

use banyan::simnet::topology::Topology;
use banyan::types::time::Duration;
use banyan_bench::runner::{header, row, run, Scenario};

fn main() {
    let topology = Topology::uniform(4, Duration::from_millis(20));
    println!("open-loop clients vs leader-minted payloads, 4 replicas, 10 s\n");
    println!("{}", header());

    // Closed (paper) baseline: every block carries 100 KB of synthetic
    // bytes minted by the proposer; the e2e columns stay dashed.
    let closed = run(&Scenario::new("banyan", topology.clone(), 1, 1)
        .payload(100_000)
        .secs(10)
        .seed(7));
    assert!(closed.safe);
    println!("{}", row("banyan (leader-mint)", 100_000, &closed));

    // Open loop: 1000 requests/sec of 1 KB each, submitted to a seeded
    // random replica's mempool; blocks carry whatever is pending.
    let open = run(&Scenario::new("banyan", topology, 1, 1)
        .rate(1_000)
        .request_size(1_000)
        .secs(10)
        .seed(7));
    assert!(open.safe);
    println!("{}", row("banyan (open-loop)", 0, &open));

    let e2e = open.client_latency.as_ref().expect("open-loop run");
    println!(
        "\n{} of {} requests committed",
        open.requests_committed, open.requests_submitted
    );
    println!(
        "proposer latency p50 {:.1} ms  |  client e2e p50 {:.1} ms / p99 {:.1} ms",
        open.latency.p50_ms, e2e.p50_ms, e2e.p99_ms
    );
    assert!(
        e2e.p50_ms >= open.latency.p50_ms,
        "submit→commit must dominate propose→commit"
    );
    println!("sanity holds: e2e latency ≥ proposer latency (mempool wait + consensus)");
}
