//! Crash-fault behavior (the paper's §9.4 / Fig. 6d): crash replicas
//! mid-run and watch block intervals stretch while safety holds — and
//! Banyan degrade to exactly ICC's behavior.
//!
//! ```sh
//! cargo run --release --example crash_faults
//! ```

use banyan::core::builder::ClusterBuilder;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::metrics::LatencyStats;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::ids::ReplicaId;
use banyan::types::time::{Duration, Time};

fn main() {
    let secs = 30u64;
    println!("n=19 across 4 US datacenters, 100 KB blocks, crashes at t=5s, Δ=1.5s\n");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>8}",
        "protocol", "crashed", "MB/s", "interval", "rounds"
    );
    for crashed in [0usize, 3, 6] {
        for protocol in ["banyan", "icc"] {
            let topology = Topology::four_us_19();
            let engines = ClusterBuilder::new(19, 6, 1)
                .expect("valid parameters")
                .delta(Duration::from_millis(1_500)) // ⇒ 3 s recovery per crashed leader
                .payload_size(100_000)
                .build(protocol);
            let faults = FaultPlan::none().crash_spread(
                crashed,
                19,
                Time(Duration::from_secs(5).as_nanos()),
            );
            let mut sim = Simulation::new(topology, engines, faults, SimConfig::with_seed(3));
            sim.run_until(Time(Duration::from_secs(secs).as_nanos()));
            assert!(sim.auditor().is_safe());
            let m = sim.metrics();
            // Observe at a replica that never crashes (18 survives all plans).
            let observer = ReplicaId(18);
            let interval = LatencyStats::from_samples(&m.block_intervals(observer));
            println!(
                "{:<10} {:>8} {:>12.2} {:>10.0}ms {:>8}",
                protocol,
                crashed,
                m.throughput_bps(observer) / 1e6,
                interval.mean_ms,
                sim.auditor().committed_rounds()
            );
        }
    }
    println!("\n(Banyan rows should match ICC rows: trying the fast path costs nothing)");
}
