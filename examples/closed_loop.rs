//! Drive a Banyan cluster from a **closed-loop client population**: N
//! clients each keep a window of outstanding requests and only resubmit
//! once a request is observed committed (via the `App` delivery path), so
//! the offered load self-regulates to what the cluster commits — the
//! workload FnF-BFT/Moonshot-style saturation sweeps are built on.
//!
//! Also demonstrates `SharedApp`: one application observed from every
//! replica, here a cluster-wide committed-byte tally.
//!
//! ```sh
//! cargo run --release --example closed_loop
//! ```

use banyan::simnet::topology::Topology;
use banyan::types::app::{App, SharedApp};
use banyan::types::engine::CommitEntry;
use banyan::types::ids::ReplicaId;
use banyan::types::time::{Duration, Time};
use banyan_bench::runner::{build_simulation, Scenario};

/// Tallies every delivered (finalized) payload byte.
#[derive(Default)]
struct ByteTally(u64);

impl App for ByteTally {
    fn deliver(&mut self, entry: &CommitEntry) {
        self.0 += entry.payload_len();
    }
}

fn main() {
    let topology = Topology::uniform(4, Duration::from_millis(20));
    let clients = 24;
    let window = 4;
    let think = Duration::from_millis(10);
    let secs = 10;

    println!(
        "closed-loop population: {clients} clients x {window} outstanding, \
         10 ms think time, 4 replicas, {secs} s\n"
    );

    let scenario = Scenario::new("banyan", topology, 1, 1)
        .closed_loop(clients, window, think)
        .request_size(1_000)
        .secs(secs)
        .seed(7);
    let mut sim = build_simulation(&scenario);

    // One SharedApp, observed from every replica: each clone delivers
    // into the same tally.
    let tally = SharedApp::new(ByteTally::default());
    for r in 0..4u16 {
        sim.attach_app(ReplicaId(r), Box::new(tally.clone()));
    }

    sim.run_until(Time(Duration::from_secs(secs).as_nanos()));
    assert!(sim.auditor().is_safe());

    let workload = sim.closed_loop().expect("closed loop attached");
    println!(
        "workload: {} submitted, {} completed, {} in flight (cap {})",
        workload.submitted(),
        workload.completed(),
        workload.in_flight(),
        workload.max_in_flight()
    );
    assert!(
        workload.in_flight() as u64 <= workload.max_in_flight(),
        "window invariant"
    );

    let summary = sim.metrics().client_load_summary();
    println!(
        "goodput {:.0} req/s  |  e2e p50 {:.1} ms / p99 {:.1} ms",
        summary.goodput_rps, summary.latency.p50_ms, summary.latency.p99_ms
    );
    println!(
        "fairness: {} clients observed, per-client mean {:.1}..{:.1} ms",
        summary.clients_observed, summary.min_client_mean_ms, summary.max_client_mean_ms
    );
    println!(
        "cluster-wide delivered bytes (all replicas, via SharedApp): {}",
        tally.inner().0
    );
    assert!(summary.goodput_rps > 0.0, "the loop must turn over");
}
