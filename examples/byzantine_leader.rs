//! Run Banyan against an equivocating leader and watch safety hold.
//!
//! Replica 0 proposes two conflicting blocks whenever it leads, sending
//! each to half the cluster — the exact adversary of the paper's
//! Lemma 8.1 (two rank-0 blocks, each carrying the Byzantine leader's
//! fast vote). The global auditor confirms no two replicas ever finalize
//! different blocks for the same round, while the chain keeps growing.
//!
//! ```sh
//! cargo run --release --example byzantine_leader
//! ```

use banyan::core::builder::ClusterBuilder;
use banyan::core::chained::ByzantineMode;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::ids::ReplicaId;
use banyan::types::time::{Duration, Time};

fn main() {
    let topology = Topology::uniform(4, Duration::from_millis(25));
    let engines = ClusterBuilder::new(4, 1, 1)
        .expect("valid parameters")
        .delta(Duration::from_millis(40))
        .payload_size(10_000)
        .byzantine(0, ByzantineMode::EquivocateLeader)
        .build_banyan();

    let mut sim = Simulation::new(
        topology,
        engines,
        FaultPlan::none(),
        SimConfig::with_seed(9),
    );
    sim.run_until(Time(Duration::from_secs(15).as_nanos()));

    let m = sim.metrics();
    println!("15 s with replica 0 equivocating in every round it leads");
    println!("  safety violations : {}", sim.auditor().violations().len());
    println!("  rounds finalized  : {}", sim.auditor().committed_rounds());
    println!(
        "  fast-path share   : {:.0}%",
        m.fast_path_share(ReplicaId(1)) * 100.0
    );
    println!(
        "  proposer latency  : {:.1} ms mean",
        m.proposer_latency_stats().mean_ms
    );
    assert!(
        sim.auditor().is_safe(),
        "equivocation must never break safety"
    );
    assert!(
        sim.auditor().committed_rounds() > 50,
        "liveness must survive equivocation"
    );
    println!("\nSafety held; the equivocator's rounds fall back to the slow path");
    println!("(condition 2 of Definition 7.6 unlocks the round), honest rounds stay fast.");
}
