//! Quickstart: run a 4-replica Banyan cluster in the WAN simulator and
//! print the paper's two metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use banyan::core::builder::ClusterBuilder;
use banyan::simnet::faults::FaultPlan;
use banyan::simnet::sim::{SimConfig, Simulation};
use banyan::simnet::topology::Topology;
use banyan::types::ids::ReplicaId;
use banyan::types::time::{Duration, Time};

fn main() {
    // One replica in each of four AWS datacenters (the paper's §9.3 small
    // testbed), 100 KB blocks.
    let topology = Topology::four_global_4();
    let delta = topology.max_one_way() + Duration::from_millis(10);

    let engines = ClusterBuilder::new(4, 1, 1) // n = 4, f = 1, p = 1
        .expect("valid parameters")
        .delta(delta)
        .payload_size(100_000)
        .build_banyan();

    let mut sim = Simulation::new(
        topology,
        engines,
        FaultPlan::none(),
        SimConfig::with_seed(1),
    );
    sim.run_until(Time(Duration::from_secs(10).as_nanos()));

    assert!(sim.auditor().is_safe(), "consensus safety violated?!");
    let metrics = sim.metrics();
    let latency = metrics.proposer_latency_stats();

    println!("simulated 10 s of Banyan over 4 global datacenters");
    println!("  rounds finalized : {}", sim.auditor().committed_rounds());
    println!(
        "  proposal latency : {:.1} ms mean / {:.1} ms p90",
        latency.mean_ms, latency.p90_ms
    );
    println!(
        "  throughput       : {:.2} MB/s",
        metrics.throughput_bps(ReplicaId(0)) / 1e6
    );
    println!(
        "  fast-path share  : {:.0}%",
        metrics.fast_path_share(ReplicaId(0)) * 100.0
    );
}
